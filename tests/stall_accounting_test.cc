/** @file Conservation invariants for the stall-cause attribution
 *  layer: every function unit is charged exactly one StallCause
 *  bucket per cycle, so for every machine preset and every paper
 *  benchmark the identity
 *
 *      cycles × numFus == issued + Σ stalls
 *
 *  must hold exactly — per FU, per cluster, and machine-wide — and
 *  the per-thread attribution must sum back to the global operation
 *  counts. */

#include <gtest/gtest.h>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/parse.hh"
#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"
#include "procoup/support/strings.hh"

namespace procoup {
namespace {

using sim::StallCause;
using sim::StallCounts;

constexpr int kIssued = static_cast<int>(StallCause::Issued);

void
expectBalanced(const sim::RunStats& s, const std::string& label)
{
    SCOPED_TRACE(label);
    ASSERT_FALSE(s.stallsByFu.empty());
    ASSERT_EQ(s.stallsByFu.size(), s.opsByFu.size());

    // Per FU: buckets partition the unit's cycles, and the Issued
    // bucket is exactly the unit's operation count.
    StallCounts fu_sum{};
    for (std::size_t fu = 0; fu < s.stallsByFu.size(); ++fu) {
        EXPECT_EQ(sim::stallCountsTotal(s.stallsByFu[fu]), s.cycles)
            << "fu " << fu;
        EXPECT_EQ(s.stallsByFu[fu][kIssued], s.opsByFu[fu])
            << "fu " << fu;
        for (int k = 0; k < sim::numStallCauses; ++k)
            fu_sum[k] += s.stallsByFu[fu][k];
    }

    // Cluster roll-up agrees with the per-FU totals.
    StallCounts cl_sum{};
    for (const auto& c : s.stallsByCluster)
        for (int k = 0; k < sim::numStallCauses; ++k)
            cl_sum[k] += c[k];
    EXPECT_EQ(fu_sum, s.stallsTotal);
    EXPECT_EQ(cl_sum, s.stallsTotal);

    // The machine-wide conservation identity, exactly.
    EXPECT_EQ(sim::stallCountsTotal(s.stallsTotal),
              s.cycles * s.stallsByFu.size());
    EXPECT_EQ(s.stallsTotal[kIssued], s.totalOps);

    // Per-thread attribution: issues per thread match the thread's
    // own counter, and thread issue counts sum to the global totals.
    std::uint64_t thread_ops = 0;
    std::uint64_t thread_issued = 0;
    for (const auto& t : s.threads) {
        EXPECT_EQ(t.stalls[kIssued], t.opsIssued) << t.name;
        thread_ops += t.opsIssued;
        thread_issued += t.stalls[kIssued];
    }
    EXPECT_EQ(thread_ops, s.totalOps);
    EXPECT_EQ(thread_issued, s.totalOps);

    std::uint64_t unit_ops = 0;
    for (int u = 0; u < isa::numUnitTypes; ++u)
        unit_ops += s.opsByUnit[u];
    EXPECT_EQ(unit_ops, s.totalOps);

    // The one-call self-check agrees with all of the above.
    EXPECT_TRUE(s.accountingBalanced());
}

/** The paper's evaluation machines: the Section 4 baseline and the
 *  three Figure 7 memory models on it. */
std::vector<std::pair<std::string, config::MachineConfig>>
paperMachines()
{
    return {
        {"baseline", config::baseline()},
        {"mem-min", config::withMemMin(config::baseline())},
        {"mem1", config::withMem1(config::baseline())},
        {"mem2", config::withMem2(config::baseline())},
    };
}

TEST(StallAccounting, PaperMachinesAllBenchmarksAllModes)
{
    for (const auto& [mname, machine] : paperMachines()) {
        core::CoupledNode node(machine);
        for (const auto& b : benchmarks::all()) {
            for (auto mode : core::allSimModes()) {
                if (mode == core::SimMode::Ideal && !b.hasIdeal())
                    continue;
                const auto r = node.runBenchmark(b, mode);
                expectBalanced(r.stats,
                               strCat(mname, "/", b.name, "/",
                                      core::simModeName(mode)));
            }
        }
    }
}

TEST(StallAccounting, RestrictedInterconnects)
{
    for (auto scheme : {config::InterconnectScheme::TriPort,
                        config::InterconnectScheme::DualPort,
                        config::InterconnectScheme::SinglePort,
                        config::InterconnectScheme::SharedBus}) {
        const auto machine =
            config::withInterconnect(config::baseline(), scheme);
        core::CoupledNode node(machine);
        for (const auto& b : benchmarks::all()) {
            const auto r =
                node.runBenchmark(b, core::SimMode::Coupled);
            expectBalanced(
                r.stats,
                strCat(interconnectSchemeName(scheme), "/", b.name));
        }
    }
}

TEST(StallAccounting, ExtensionKnobs)
{
    auto oc = config::baseline();
    oc.opCache.enabled = true;
    oc.opCache.linesPerUnit = 8;
    oc.opCache.rowsPerLine = 2;
    oc.opCache.missPenalty = 5;

    auto rr = config::baseline();
    rr.arbitration = config::ArbitrationPolicy::RoundRobin;

    auto swap = config::withMem1(config::baseline());
    swap.maxActiveThreads = 3;
    swap.swapOutIdleCycles = 12;

    auto banks = config::withMem2(config::baseline());
    banks.memory.modelBankConflicts = true;
    banks.memory.numBanks = 2;

    auto mix = config::fuMix(2, 3);

    const std::vector<std::pair<std::string, config::MachineConfig>>
        machines = {{"opcache", oc},
                    {"round-robin", rr},
                    {"bounded+swap", swap},
                    {"bank-conflicts", banks},
                    {"fumix-2-3", mix}};
    for (const auto& [mname, machine] : machines) {
        core::CoupledNode node(machine);
        for (const auto& b : benchmarks::all()) {
            const auto r =
                node.runBenchmark(b, core::SimMode::Coupled);
            expectBalanced(r.stats, strCat(mname, "/", b.name));
        }
    }
}

TEST(StallAccounting, OpcacheMissesShowUpAsOpcacheStalls)
{
    auto machine = config::baseline();
    machine.opCache.enabled = true;
    machine.opCache.linesPerUnit = 4;
    machine.opCache.rowsPerLine = 1;
    machine.opCache.missPenalty = 6;

    core::CoupledNode node(machine);
    const auto r = node.runBenchmark(benchmarks::byName("Matrix"),
                                     core::SimMode::Coupled);
    expectBalanced(r.stats, "opcache-stress/Matrix");
    EXPECT_GT(r.stats.opCacheMisses, 0u);
    EXPECT_GT(r.stats.stallsTotal[static_cast<int>(
                  StallCause::OpcacheMiss)],
              0u);
}

TEST(StallAccounting, PortConflictsShowUpAsWritebackStalls)
{
    // Shared-Bus allows one remote write per cycle machine-wide;
    // coupled FFT generates plenty of cross-cluster traffic, so some
    // issue slots must be lost to writeback port conflicts.
    const auto machine = config::withInterconnect(
        config::baseline(), config::InterconnectScheme::SharedBus);
    core::CoupledNode node(machine);
    const auto r = node.runBenchmark(benchmarks::byName("FFT"),
                                     core::SimMode::Coupled);
    expectBalanced(r.stats, "shared-bus/FFT");
    EXPECT_GT(r.stats.writebackStallCycles, 0u);
    EXPECT_GT(r.stats.stallsTotal[static_cast<int>(
                  StallCause::WritebackConflict)],
              0u);
}

TEST(StallAccounting, SequentialModeIdlesNonSeqClusters)
{
    // SEQ compiles to a single cluster: units of the other clusters
    // must be charged NoReadyOp/IdleNoThread, never operand stalls.
    core::CoupledNode node(config::baseline());
    const auto r = node.runBenchmark(benchmarks::byName("Matrix"),
                                     core::SimMode::Seq);
    expectBalanced(r.stats, "baseline/Matrix/SEQ");
    std::uint64_t busy_clusters = 0;
    for (const auto& c : r.stats.stallsByCluster)
        if (c[kIssued] > 0)
            ++busy_clusters;
    // One arithmetic cluster plus at most the branch clusters.
    EXPECT_LE(busy_clusters, 3u);
}

} // namespace
} // namespace procoup
