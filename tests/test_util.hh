#ifndef PROCOUP_TESTS_TEST_UTIL_HH
#define PROCOUP_TESTS_TEST_UTIL_HH

/**
 * @file
 * Shared helpers for the test suites: the baseline machine's
 * function-unit numbering and small program-building shortcuts.
 *
 * Baseline machine layout (config::baseline()):
 *   clusters 0..3: fu 3c+0 = IU, 3c+1 = FPU, 3c+2 = MU
 *   cluster 4:     fu 12 = BR       cluster 5: fu 13 = BR
 */

#include "procoup/config/presets.hh"

namespace procoup {
namespace testutil {

inline int fuIU(int cluster)  { return 3 * cluster + 0; }
inline int fuFPU(int cluster) { return 3 * cluster + 1; }
inline int fuMU(int cluster)  { return 3 * cluster + 2; }
inline int fuBR0() { return 12; }
inline int fuBR1() { return 13; }

inline isa::RegRef
rr(int cluster, int index)
{
    return isa::RegRef{static_cast<std::uint16_t>(cluster),
                       static_cast<std::uint16_t>(index)};
}

} // namespace testutil
} // namespace procoup

#endif // PROCOUP_TESTS_TEST_UTIL_HH
