/** @file Unit tests for the PCL-to-IR frontend: lowering of every
 *  language construct, macro expansion, unrolling, forall protocol. */

#include <gtest/gtest.h>

#include <set>

#include "procoup/ir/frontend.hh"
#include "procoup/lang/parser.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

using ir::Module;
using isa::Opcode;

Module
build(const std::string& src, int clones = 1)
{
    ir::FrontendOptions opts;
    opts.forkClones = clones;
    return ir::buildModule(src, opts);
}

/** Count instructions with a given opcode across a function. */
int
countOps(const ir::ThreadFunc& f, Opcode op)
{
    int n = 0;
    for (const auto& b : f.blocks)
        for (const auto& i : b.instrs)
            if (i.op == op)
                ++n;
    return n;
}

TEST(Frontend, MinimalMain)
{
    const Module m = build("(defun main () 0)");
    ASSERT_EQ(m.funcs.size(), 1u);
    EXPECT_EQ(m.funcs[0].name, "main");
    // Body is a constant; only the ETHR remains.
    EXPECT_EQ(countOps(m.funcs[0], Opcode::ETHR), 1);
}

TEST(Frontend, MissingMainThrows)
{
    EXPECT_THROW(build("(defun f () 0)"), CompileError);
}

TEST(Frontend, GlobalsLayout)
{
    const Module m = build(
        "(defvar x 5)"
        "(defarray a (4) :float)"
        "(defarray b (2 3) :int)"
        "(defun main () 0)");
    ASSERT_EQ(m.globals.size(), 3u);
    EXPECT_EQ(m.findGlobal("x")->size, 1u);
    EXPECT_EQ(m.findGlobal("a")->base, 1u);
    EXPECT_EQ(m.findGlobal("a")->size, 4u);
    EXPECT_EQ(m.findGlobal("b")->base, 5u);
    EXPECT_EQ(m.findGlobal("b")->size, 6u);
    EXPECT_EQ(m.memorySize, 11u);
    EXPECT_EQ(m.findGlobal("b")->elemType, ir::Type::Int);
}

TEST(Frontend, ArrayInitEach)
{
    const Module m = build(
        "(defarray a (4) :init-each (* 1.5 i))"
        "(defun main () 0)");
    const auto& g = *m.findGlobal("a");
    ASSERT_EQ(g.inits.size(), 4u);
    EXPECT_DOUBLE_EQ(g.inits[2].second.asFloat(), 3.0);
}

TEST(Frontend, ArrayInit2DRowCol)
{
    const Module m = build(
        "(defarray a (2 3) :init-each (+ (* 10.0 r) c))"
        "(defun main () 0)");
    const auto& g = *m.findGlobal("a");
    // a[1][2] = 12.0 at linear offset 5.
    EXPECT_DOUBLE_EQ(g.inits[5].second.asFloat(), 12.0);
}

TEST(Frontend, EmptyArraysMarked)
{
    const Module m = build(
        "(defarray q (8) :int :empty)(defun main () 0)");
    EXPECT_TRUE(m.findGlobal("q")->startsEmpty);
}

TEST(Frontend, ArithmeticTypePromotion)
{
    const Module m = build(
        "(defvar out 0.0)"
        "(defun main () (let ((i 3)) (set out (+ 1.5 i))))");
    const auto& f = m.funcs[0];
    // i is int: promoting it needs an ITOF and the add becomes FADD.
    EXPECT_EQ(countOps(f, Opcode::ITOF), 1);
    EXPECT_EQ(countOps(f, Opcode::FADD), 1);
    EXPECT_EQ(countOps(f, Opcode::IADD), 0);
}

TEST(Frontend, ConstantsFoldAtLowering)
{
    const Module m = build(
        "(defvar out 0)"
        "(defun main () (set out (+ 1 (* 2 3))))");
    const auto& f = m.funcs[0];
    EXPECT_EQ(countOps(f, Opcode::IADD), 0);
    EXPECT_EQ(countOps(f, Opcode::IMUL), 0);
}

TEST(Frontend, ArefEmitsIndexArithmetic)
{
    const Module m = build(
        "(defarray a (9 9))"
        "(defvar out 0.0)"
        "(defun main () (let ((i 2) (j 3)) (set out (aref a i j))))");
    const auto& f = m.funcs[0];
    // offset = (0 + i) * 9 + j: one IMUL, one or two IADDs.
    EXPECT_EQ(countOps(f, Opcode::IMUL), 1);
    EXPECT_GE(countOps(f, Opcode::IADD), 1);
    EXPECT_EQ(countOps(f, Opcode::LD), 1);
}

TEST(Frontend, ConstIndicesFoldAway)
{
    const Module m = build(
        "(defarray a (9 9))"
        "(defvar out 0.0)"
        "(defun main () (set out (aref a 2 3)))");
    const auto& f = m.funcs[0];
    EXPECT_EQ(countOps(f, Opcode::IMUL), 0);
    EXPECT_EQ(countOps(f, Opcode::IADD), 0);
}

TEST(Frontend, SyncFlavorsLowered)
{
    const Module m = build(
        "(defarray q (2) :int :empty)"
        "(defvar out 0)"
        "(defun main ()"
        "  (put q 0 5)"
        "  (set out (take q 0))"
        "  (update q 0 7)"
        "  (set out (wait-load q 0)))");
    const auto& f = m.funcs[0];
    std::set<std::string> flavors;
    for (const auto& b : f.blocks)
        for (const auto& i : b.instrs)
            if (i.isMemory())
                flavors.insert(i.flavor.toString());
    EXPECT_TRUE(flavors.count("we/sf"));  // put
    EXPECT_TRUE(flavors.count("wf/se"));  // take
    EXPECT_TRUE(flavors.count("wf/-"));   // update and wait-load
}

TEST(Frontend, WhileBuildsLoopCfg)
{
    const Module m = build(
        "(defvar out 0)"
        "(defun main ()"
        "  (let ((i 0))"
        "    (while (< i 10) (set i (+ i 1)))"
        "    (set out i)))");
    const auto& f = m.funcs[0];
    EXPECT_GE(f.blocks.size(), 4u);
    EXPECT_EQ(countOps(f, Opcode::BF), 1);
    EXPECT_GE(countOps(f, Opcode::BR), 2);
    // Terminator invariant: every block ends with one.
    for (const auto& b : f.blocks)
        EXPECT_TRUE(!b.instrs.empty() && b.instrs.back().isTerminator());
}

TEST(Frontend, ForUnrollExpandsBody)
{
    const Module m = build(
        "(defarray a (5))"
        "(defun main ()"
        "  (for (i 0 5 :unroll) (aset a i (float i))))");
    const auto& f = m.funcs[0];
    // Five stores, no loop control.
    EXPECT_EQ(countOps(f, Opcode::ST), 5);
    EXPECT_EQ(countOps(f, Opcode::BF), 0);
    EXPECT_EQ(f.blocks.size(), 1u);
}

TEST(Frontend, NestedUnrollGivesConstantAddresses)
{
    const Module m = build(
        "(defarray a (3 3))"
        "(defun main ()"
        "  (for (i 0 3 :unroll) (for (j 0 3 :unroll)"
        "    (aset a i j 1.0))))");
    const auto& f = m.funcs[0];
    EXPECT_EQ(countOps(f, Opcode::ST), 9);
    EXPECT_EQ(countOps(f, Opcode::IMUL), 0);  // indices folded
}

TEST(Frontend, UnrollRequiresConstantBounds)
{
    EXPECT_THROW(build(
        "(defvar n 5)"
        "(defun main () (for (i 0 n :unroll) 0))"), CompileError);
}

TEST(Frontend, DefunInlinesAtCallSite)
{
    const Module m = build(
        "(defvar out 0)"
        "(defun sq (x) (* x x))"
        "(defun main () (set out (sq (sq 3))))");
    // sq is expanded, not called: no extra function, two IMULs
    // inline (parameters are bound to fresh registers; the constant
    // propagation pass folds them later).
    ASSERT_EQ(m.funcs.size(), 1u);
    const auto& f = m.funcs[0];
    EXPECT_EQ(countOps(f, Opcode::IMUL), 2);
    EXPECT_GE(countOps(f, Opcode::MOV), 1);
}

TEST(Frontend, RecursionRejected)
{
    EXPECT_THROW(build(
        "(defun f (x) (f x))"
        "(defun main () (f 1))"), CompileError);
}

TEST(Frontend, IfWithValue)
{
    const Module m = build(
        "(defvar out 0.0)"
        "(defvar sel 1)"
        "(defun main () (set out (if (< sel 2) 1.5 2.5)))");
    const auto& f = m.funcs[0];
    EXPECT_EQ(countOps(f, Opcode::BF), 1);
    EXPECT_GE(countOps(f, Opcode::MOV), 2);  // both arms write result
}

TEST(Frontend, ForkCreatesThreadFunction)
{
    const Module m = build(
        "(defarray out (4))"
        "(defun worker (i) (aset out i 1.0))"
        "(defun main () (fork (worker 2)))");
    ASSERT_EQ(m.funcs.size(), 2u);
    // main compiled first: entry must point at it.
    EXPECT_EQ(m.funcs[m.entry].name, "main");
    const auto& worker = m.funcs[1 - m.entry];
    EXPECT_EQ(worker.name, "worker");
    EXPECT_EQ(worker.params.size(), 1u);
    EXPECT_EQ(countOps(m.funcs[m.entry], Opcode::FORK), 1);
}

TEST(Frontend, ForkClonesGenerated)
{
    const Module m = build(
        "(defarray out (4))"
        "(defun worker (i) (aset out i 1.0))"
        "(defun main () (fork (worker 2)))", /*clones=*/4);
    // main + 4 clones of worker.
    ASSERT_EQ(m.funcs.size(), 5u);
    std::set<int> clone_ids;
    for (const auto& f : m.funcs)
        if (f.baseName == "worker")
            clone_ids.insert(f.cloneIndex);
    EXPECT_EQ(clone_ids, (std::set<int>{0, 1, 2, 3}));
}

TEST(Frontend, ForallGeneratesJoinProtocol)
{
    const Module m = build(
        "(defarray a (8))"
        "(defun main () (forall (i 0 8) (aset a i (float i))))");
    // main + one child.
    ASSERT_EQ(m.funcs.size(), 2u);
    EXPECT_NE(m.findGlobal("forall0.counter"), nullptr);
    ASSERT_NE(m.findGlobal("forall0.done"), nullptr);
    EXPECT_TRUE(m.findGlobal("forall0.done")->startsEmpty);

    const auto& main_fn = m.funcs[m.entry];
    const auto& child = m.funcs[1 - m.entry];
    // Constant trip count: one straight-line FORK per instance.
    EXPECT_EQ(countOps(main_fn, Opcode::FORK), 8);
    // Parent waits with a consume-load on the done cell.
    int consume_loads = 0;
    for (const auto& b : main_fn.blocks)
        for (const auto& i : b.instrs)
            if (i.op == Opcode::LD &&
                    i.flavor == isa::MemFlavor::consumeLoad())
                ++consume_loads;
    EXPECT_EQ(consume_loads, 1);
    // Child decrements the counter (take + store) and fills done.
    EXPECT_GE(countOps(child, Opcode::ST), 2);
    EXPECT_EQ(child.params.size(), 1u);  // just the index
}

TEST(Frontend, ForallCapturesFreeVariables)
{
    const Module m = build(
        "(defarray a (8 8))"
        "(defun main ()"
        "  (let ((k 3))"
        "    (forall (i 0 8) (aset a k i 2.0))))");
    const auto& child = m.funcs[1 - m.entry];
    EXPECT_EQ(child.params.size(), 2u);  // k and i
}

TEST(Frontend, ForallTooManyCapturesRejected)
{
    EXPECT_THROW(build(
        "(defarray a (8))"
        "(defun main ()"
        "  (let ((x 1) (y 2) (z 3))"
        "    (forall (i 0 8) (aset a i (float (+ x y z i))))))"),
        CompileError);
}

TEST(Frontend, MarkLowered)
{
    const Module m = build("(defun main () (mark 42))");
    const auto& f = m.funcs[0];
    bool found = false;
    for (const auto& b : f.blocks)
        for (const auto& i : b.instrs)
            if (i.op == Opcode::MARK && i.markId == 42)
                found = true;
    EXPECT_TRUE(found);
}

TEST(Frontend, ConstExprEvaluator)
{
    using ir::evalConstExpr;
    const auto forms = lang::parse("(+ 1 (* 2 3)) (cos 0.0) (min 4 2 9)");
    EXPECT_EQ(evalConstExpr(forms[0], {}).asInt(), 7);
    EXPECT_DOUBLE_EQ(evalConstExpr(forms[1], {}).asFloat(), 1.0);
    EXPECT_EQ(evalConstExpr(forms[2], {}).asInt(), 2);
    const auto bound = lang::parse("(* i 2)");
    EXPECT_EQ(
        evalConstExpr(bound[0], {{"i", isa::Value::makeInt(5)}}).asInt(),
        10);
    EXPECT_THROW(evalConstExpr(bound[0], {}), CompileError);
}

TEST(Frontend, UnknownVariableRejected)
{
    EXPECT_THROW(build("(defun main () (set nope 1))"), CompileError);
    EXPECT_THROW(build("(defun main () nope)"), CompileError);
}

TEST(Frontend, FloatToIntNeedsExplicitCast)
{
    EXPECT_THROW(build(
        "(defvar out 0)"
        "(defun main () (set out 1.5))"), CompileError);
    EXPECT_NO_THROW(build(
        "(defvar out 0)"
        "(defun main () (set out (int 1.5)))"));
}

} // namespace
} // namespace procoup
