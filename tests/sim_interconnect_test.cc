/** @file Unit tests for the writeback interconnection network: port and
 *  bus budgets of the five communication schemes of Figure 6. */

#include <gtest/gtest.h>

#include "procoup/sim/interconnect.hh"

namespace procoup {
namespace {

using config::InterconnectScheme;
using sim::WritebackNetwork;

TEST(Interconnect, FullIsUnrestricted)
{
    WritebackNetwork n(InterconnectScheme::Full, 4);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(n.tryGrant(0, 0));
        EXPECT_TRUE(n.tryGrant(1, 0));
        EXPECT_TRUE(n.tryGrant(2, 3));
    }
    EXPECT_EQ(n.stats().denials, 0u);
}

TEST(Interconnect, TriPortBudgets)
{
    WritebackNetwork n(InterconnectScheme::TriPort, 4);
    // Three write ports per register file: local writes may borrow
    // idle global ports, so three writes land per file per cycle.
    EXPECT_TRUE(n.tryGrant(0, 0));   // the local port
    EXPECT_TRUE(n.tryGrant(0, 0));   // borrows a global port
    EXPECT_TRUE(n.tryGrant(1, 0));   // the second global port
    EXPECT_FALSE(n.tryGrant(2, 0));  // all three ports used
    EXPECT_FALSE(n.tryGrant(0, 0));
    // Other files unaffected (private buses).
    EXPECT_TRUE(n.tryGrant(0, 1));
    EXPECT_TRUE(n.tryGrant(0, 2));

    n.beginCycle();
    EXPECT_TRUE(n.tryGrant(0, 0));  // budgets replenished
    EXPECT_TRUE(n.tryGrant(1, 0));
}

TEST(Interconnect, TriPortRemoteCannotUseLocalPort)
{
    WritebackNetwork n(InterconnectScheme::TriPort, 4);
    EXPECT_TRUE(n.tryGrant(1, 0));   // global port 1
    EXPECT_TRUE(n.tryGrant(2, 0));   // global port 2
    EXPECT_FALSE(n.tryGrant(3, 0));  // local port is local-only
    EXPECT_TRUE(n.tryGrant(0, 0));   // ...and still free for a local
}

TEST(Interconnect, DualPortBudgets)
{
    WritebackNetwork n(InterconnectScheme::DualPort, 4);
    EXPECT_TRUE(n.tryGrant(0, 0));   // local
    EXPECT_TRUE(n.tryGrant(1, 0));   // the single global port
    EXPECT_FALSE(n.tryGrant(2, 0));  // second remote denied
    EXPECT_TRUE(n.tryGrant(2, 1));   // different file ok
}

TEST(Interconnect, SinglePortSharedByLocalAndRemote)
{
    WritebackNetwork n(InterconnectScheme::SinglePort, 4);
    EXPECT_TRUE(n.tryGrant(0, 0));   // local takes the only port
    EXPECT_FALSE(n.tryGrant(1, 0));  // remote denied
    EXPECT_FALSE(n.tryGrant(0, 0));  // second local denied
    // No interference with other register files.
    EXPECT_TRUE(n.tryGrant(3, 1));
    EXPECT_TRUE(n.tryGrant(1, 2));
}

TEST(Interconnect, SharedBusOneRemotePerCycleMachineWide)
{
    WritebackNetwork n(InterconnectScheme::SharedBus, 4);
    EXPECT_TRUE(n.tryGrant(0, 1));   // takes the bus
    EXPECT_FALSE(n.tryGrant(2, 3));  // any other remote denied
    // Local writes do not use the bus.
    EXPECT_TRUE(n.tryGrant(0, 0));
    EXPECT_TRUE(n.tryGrant(3, 3));
    EXPECT_FALSE(n.tryGrant(3, 3));  // but local port is still 1/cycle

    n.beginCycle();
    EXPECT_TRUE(n.tryGrant(2, 3));   // bus free again
}

TEST(Interconnect, StatsCountGrantsAndDenials)
{
    WritebackNetwork n(InterconnectScheme::DualPort, 2);
    n.tryGrant(0, 0);   // grant (local)
    n.tryGrant(1, 0);   // grant (remote)
    n.tryGrant(1, 0);   // denial
    EXPECT_EQ(n.stats().grants, 2u);
    EXPECT_EQ(n.stats().remoteGrants, 1u);
    EXPECT_EQ(n.stats().denials, 1u);
}

} // namespace
} // namespace procoup
