/** @file Sweep-daemon wire protocol (exp/service.hh): kind-tagged
 *  frame round-trips and garbage rejection, plan-submit envelopes
 *  that preserve every point fingerprint (the keystone of daemon
 *  vs. local byte-identity), lease/result/stats bodies, and the
 *  worker-lost error-kind name the report schema depends on. */

#include <gtest/gtest.h>

#include <string>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/exp/journal.hh"
#include "procoup/exp/plan.hh"
#include "procoup/exp/runner.hh"
#include "procoup/exp/serialize.hh"
#include "procoup/exp/service.hh"
#include "procoup/fault/fault.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

exp::ExperimentPlan
smallPlan()
{
    const auto machine = config::baseline();
    exp::ExperimentPlan plan("daemon-test");
    plan.addBenchmark(machine, benchmarks::byName("Matrix"),
                      core::SimMode::Coupled);
    plan.addBenchmark(machine, benchmarks::byName("Matrix"),
                      core::SimMode::Sts);
    plan.addBenchmark(machine, benchmarks::byName("LUD"),
                      core::SimMode::Coupled);
    return plan;
}

TEST(Service, FrameKindNamesAndValidity)
{
    EXPECT_EQ(exp::frameKindName(exp::FrameKind::PlanSubmit),
              "plan-submit");
    EXPECT_EQ(exp::frameKindName(exp::FrameKind::PointLease),
              "point-lease");
    EXPECT_EQ(exp::frameKindName(exp::FrameKind::PointResult),
              "point-result");
    EXPECT_EQ(exp::frameKindName(exp::FrameKind::Heartbeat),
              "heartbeat");
    EXPECT_EQ(exp::frameKindName(exp::FrameKind::StreamAck),
              "stream-ack");
    EXPECT_EQ(exp::frameKindName(exp::FrameKind::Shutdown),
              "shutdown");
    EXPECT_EQ(exp::frameKindName(exp::FrameKind::PlanDone),
              "plan-done");
    EXPECT_EQ(exp::frameKindName(exp::FrameKind::ServiceError),
              "service-error");

    for (int tag = 1; tag <= 8; ++tag)
        EXPECT_TRUE(exp::frameKindValid(
            static_cast<std::uint8_t>(tag))) << tag;
    EXPECT_FALSE(exp::frameKindValid(0));
    for (int tag = 9; tag <= 255; ++tag)
        EXPECT_FALSE(exp::frameKindValid(
            static_cast<std::uint8_t>(tag))) << tag;
}

TEST(Service, KindFrameRoundTripAndGarbageRejection)
{
    const std::string body = "lease body bytes";
    const std::string bytes =
        exp::kindFrame(exp::FrameKind::PointLease, body);

    std::size_t offset = 0;
    std::string payload;
    ASSERT_TRUE(exp::readFrame(bytes, offset, &payload));
    EXPECT_EQ(offset, bytes.size());

    exp::FrameKind kind;
    std::string got;
    ASSERT_TRUE(exp::splitKindPayload(payload, &kind, &got));
    EXPECT_EQ(kind, exp::FrameKind::PointLease);
    EXPECT_EQ(got, body);

    // Empty payloads and unknown tags are rejected, not misread.
    EXPECT_FALSE(exp::splitKindPayload("", &kind, &got));
    std::string evil = payload;
    evil[0] = static_cast<char>(0x2A);
    EXPECT_FALSE(exp::splitKindPayload(evil, &kind, &got));
}

TEST(Service, PlanSubmitPreservesFingerprintsAndKnobs)
{
    exp::ExperimentPlan plan = smallPlan();
    // Give one point a fault plan and tuned budgets so the codec has
    // to carry the full SimOptions surface, not just defaults.
    auto& tuned = plan.mutablePoints()[1];
    tuned.simOptions.faults =
        fault::FaultPlan::atIntensity(0.5, 20260808);
    tuned.simOptions.limits.maxCycles = 123456;
    tuned.simOptions.sanitizeEveryCycles = 64;

    exp::RunnerOptions ropts;
    ropts.cacheEnabled = false;
    ropts.failSafe = true;
    ropts.retryFaulted = true;
    ropts.retryPolicy.maxAttempts = 5;

    const std::string body = exp::encodePlanSubmit(plan, ropts);
    exp::PlanEnvelope env;
    ASSERT_TRUE(exp::decodePlanSubmit(body, &env));

    EXPECT_FALSE(env.cacheEnabled);
    EXPECT_TRUE(env.failSafe);
    EXPECT_TRUE(env.retryFaulted);
    EXPECT_EQ(env.retries, 4);

    // The keystone of daemon/local byte-identity: every decoded
    // point hashes to the same fingerprint as the original, so the
    // daemon journals, dedups, and replays the *same* points.
    ASSERT_EQ(env.plan.points().size(), plan.points().size());
    for (std::size_t i = 0; i < plan.points().size(); ++i) {
        EXPECT_EQ(env.plan.points()[i].label, plan.points()[i].label);
        EXPECT_EQ(exp::pointFingerprint(env.plan.points()[i]),
                  exp::pointFingerprint(plan.points()[i]))
            << plan.points()[i].label;
    }
    EXPECT_EQ(exp::planFingerprint(env.plan),
              exp::planFingerprint(plan));

    EXPECT_FALSE(exp::decodePlanSubmit("garbage", &env));
    EXPECT_FALSE(exp::decodePlanSubmit("", &env));
}

TEST(Service, PlanSubmitRejectsTraceSinks)
{
    exp::ExperimentPlan plan = smallPlan();
    plan.mutablePoints()[0].tracer = [](const sim::TraceEvent&) {};
    exp::RunnerOptions ropts;
    EXPECT_THROW(exp::encodePlanSubmit(plan, ropts), CompileError);
}

TEST(Service, LeaseInfoRoundTrip)
{
    exp::LeaseInfo lease;
    lease.planIndex = 17;
    lease.fingerprint = "deadbeefdeadbeef";
    lease.leaseId = 42;
    lease.leaseMs = 1500.5;

    exp::LeaseInfo back;
    ASSERT_TRUE(exp::decodeLeaseInfo(exp::encodeLeaseInfo(lease),
                                     &back));
    EXPECT_EQ(back.planIndex, 17u);
    EXPECT_EQ(back.fingerprint, "deadbeefdeadbeef");
    EXPECT_EQ(back.leaseId, 42u);
    EXPECT_EQ(back.leaseMs, 1500.5);

    EXPECT_FALSE(exp::decodeLeaseInfo("garbage", &back));
}

TEST(Service, PointResultRoundTrip)
{
    exp::OutcomeRecord rec;
    rec.label = "Matrix/SEQ@baseline";
    rec.pointFingerprint = "0123456789abcdef";
    rec.failed = true;
    rec.errorKind =
        static_cast<std::uint8_t>(SimErrorKind::WorkerLost);
    rec.error = "lease expired";
    rec.retries = 3;

    const std::string body =
        exp::encodePointResult(7, exp::encodeOutcomeRecord(rec));

    std::uint64_t index = 0;
    std::string rec_payload;
    ASSERT_TRUE(exp::decodePointResult(body, &index, &rec_payload));
    EXPECT_EQ(index, 7u);

    exp::OutcomeRecord back;
    ASSERT_TRUE(exp::decodeOutcomeRecord(rec_payload, &back));
    EXPECT_EQ(back.label, rec.label);
    EXPECT_EQ(back.pointFingerprint, rec.pointFingerprint);
    EXPECT_TRUE(back.failed);
    EXPECT_EQ(back.errorKind, rec.errorKind);
    EXPECT_EQ(back.retries, 3);

    EXPECT_FALSE(exp::decodePointResult("garbage", &index,
                                        &rec_payload));
}

TEST(Service, DaemonStatsRoundTrip)
{
    exp::DaemonStats stats;
    stats.active = true;
    stats.jobs = 4;
    stats.leasesIssued = 10;
    stats.leasesExpired = 2;
    stats.leasesReassigned = 3;
    stats.heartbeats = 99;
    stats.workerLost = 1;
    stats.resultsStreamed = 12;
    stats.acksReceived = 11;
    stats.replayed = 5;
    stats.executed = 7;
    stats.reconnects = 2;
    stats.cacheHits = 6;
    stats.cacheMisses = 1;
    stats.compiles = 1;

    exp::DaemonStats back;
    ASSERT_TRUE(exp::decodeDaemonStats(exp::encodeDaemonStats(stats),
                                       &back));
    EXPECT_EQ(back.jobs, 4u);
    EXPECT_EQ(back.leasesIssued, 10u);
    EXPECT_EQ(back.leasesExpired, 2u);
    EXPECT_EQ(back.leasesReassigned, 3u);
    EXPECT_EQ(back.heartbeats, 99u);
    EXPECT_EQ(back.workerLost, 1u);
    EXPECT_EQ(back.resultsStreamed, 12u);
    EXPECT_EQ(back.acksReceived, 11u);
    EXPECT_EQ(back.replayed, 5u);
    EXPECT_EQ(back.executed, 7u);
    EXPECT_EQ(back.reconnects, 2u);
    EXPECT_EQ(back.cacheHits, 6u);
    EXPECT_EQ(back.cacheMisses, 1u);
    EXPECT_EQ(back.compiles, 1u);

    EXPECT_FALSE(exp::decodeDaemonStats("garbage", &back));
}

TEST(Service, WorkerLostKindNameMatchesReportSchema)
{
    // scripts/check_stats_schema.py pins this spelling in its
    // ERROR_KINDS taxonomy; the sweep report emits it verbatim.
    EXPECT_EQ(simErrorKindName(SimErrorKind::WorkerLost),
              "worker-lost");
}

} // namespace
} // namespace procoup
