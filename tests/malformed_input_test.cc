/** @file Malformed-input hardening: truncated, garbage, or
 *  wrongly-typed PCL programs and machine descriptions must surface
 *  as structured CompileError diagnostics with a source location —
 *  never as an assertion abort or a crash. Every case here reaches a
 *  parser or typed-accessor path that user input can hit through
 *  pcsim (--machine FILE, program.pcl). */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "procoup/config/parse.hh"
#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"
#include "procoup/gen/generator.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

TEST(MalformedInput, BrokenProgramsRaiseCompileError)
{
    const std::vector<std::string> sources = {
        "",                                  // empty file
        "(defun main (",                     // truncated mid-list
        "(defun main ())))",                 // extra closers
        "@#$%!",                             // garbage bytes
        "(defun 42 ())",                     // number where a symbol
        "(defun main () (+ 1",               // truncated expression
        "(defvar x 99999999999999999999999)" // integer overflow
        "(defun main () 0)",
        "(defun main () (undefined-op 1))",  // unknown operator
        "(1 2 3)",                           // list head not a symbol
        "(defun main () (aref))",            // arity underflow
    };
    core::CoupledNode node(config::baseline());
    for (const auto& src : sources)
        EXPECT_THROW(node.runSource(src, core::SimMode::Coupled),
                     CompileError)
            << "source: " << src;
}

TEST(MalformedInput, BrokenMachineDescriptionsRaiseCompileError)
{
    const std::vector<std::string> descriptions = {
        "",                                   // empty file
        "(machine",                           // truncated
        "(machine (cluster",                  // truncated deeper
        "garbage here",                       // not a machine form
        "(machine 5)",                        // int where a list
        "(machine (cluster))",                // cluster with no units
        "(machine (cluster (quux)))",         // unknown unit type
        "(machine (cluster (iu 2.5)))",       // float latency
        "(machine (cluster (iu 0)))",         // latency out of range
        "(machine (cluster (iu)) (interconnect mesh))", // bad scheme
        "(machine (cluster (iu)) (memory :banks x))",   // symbol count
    };
    for (const auto& desc : descriptions)
        EXPECT_THROW(config::parseMachine(desc), CompileError)
            << "description: " << desc;
}

TEST(MalformedInput, DiagnosticsCarrySourceLocations)
{
    try {
        config::parseMachine("(machine\n  (cluster (iu 2.5)))");
        FAIL() << "expected CompileError";
    } catch (const CompileError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    }
}

/** Generator-derived near-misses: take known-good generated programs
 *  and apply every deterministic corruption mutateToNearMiss knows
 *  (truncations, dropped/doubled parens, nesting bombs, out-of-range
 *  literals, misspelled defun, stray control bytes, spliced
 *  duplicate forms). Each mutant must either still compile or raise
 *  CompileError — anything else (assertion abort, std::bad_alloc,
 *  stack overflow, silent wrong parse crashing the sim) is a
 *  frontend hardening bug. This loop found the duplicate-global
 *  panic the frontend now rejects. */
TEST(MalformedInput, GeneratorNearMissesNeverCrashTheFrontend)
{
    core::CoupledNode node(config::baseline());
    int compiled = 0;
    int rejected = 0;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        const std::string good = gen::generate(seed).source;
        for (std::uint64_t mut = 0; mut < 10; ++mut) {
            const std::string bad =
                gen::mutateToNearMiss(good, seed * 10 + mut);
            try {
                node.runSource(bad, core::SimMode::Seq);
                ++compiled;
            } catch (const CompileError&) {
                ++rejected;
            }
            // Any other exception or signal fails the test.
        }
    }
    // Sanity: the mutator must actually produce both kinds.
    EXPECT_GT(compiled, 0);
    EXPECT_GT(rejected, compiled);
}

TEST(MalformedInput, DeepNestingIsDepthCapped)
{
    std::string bomb = "(defun main () ";
    for (int i = 0; i < 3000; ++i)
        bomb += "(+ 1 ";
    bomb += "1";
    for (int i = 0; i < 3000; ++i)
        bomb += ")";
    bomb += ")";
    core::CoupledNode node(config::baseline());
    EXPECT_THROW(node.runSource(bomb, core::SimMode::Seq),
                 CompileError);
}

TEST(MalformedInput, DuplicateGlobalsAreRejected)
{
    core::CoupledNode node(config::baseline());
    EXPECT_THROW(node.runSource("(defvar x 1)(defvar x 2)"
                                "(defun main () x)",
                                core::SimMode::Seq),
                 CompileError);
    EXPECT_THROW(node.runSource("(defarray a (4) :int)"
                                "(defvar a 0)(defun main () 0)",
                                core::SimMode::Seq),
                 CompileError);
}

TEST(MalformedInput, HugeArraySizesAreRejectedNotWrapped)
{
    core::CoupledNode node(config::baseline());
    // 70000 * 70000 words overflows the uint32 size product; the
    // frontend must reject it, not wrap and allocate garbage.
    EXPECT_THROW(node.runSource("(defarray big (70000 70000) :int)"
                                "(defun main () 0)",
                                core::SimMode::Seq),
                 CompileError);
    EXPECT_THROW(node.runSource("(defarray big (20000000) :int)"
                                "(defun main () 0)",
                                core::SimMode::Seq),
                 CompileError);
}

TEST(MalformedInput, ConstantIndexOutOfRangeIsRejected)
{
    core::CoupledNode node(config::baseline());
    EXPECT_THROW(node.runSource("(defarray a (4) :int)"
                                "(defun main () (aref a 9))",
                                core::SimMode::Seq),
                 CompileError);
}

TEST(MalformedInput, NumberOverflowIsRangeChecked)
{
    core::CoupledNode node(config::baseline());
    try {
        node.runSource("(defvar x 123456789012345678901234567890)"
                       "(defun main () 0)",
                       core::SimMode::Coupled);
        FAIL() << "expected CompileError";
    } catch (const CompileError& e) {
        EXPECT_NE(std::string(e.what()).find("out of range"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace procoup
