/**
 * @file
 * Enforces the SweepRunner determinism contract (docs/INTERNALS.md,
 * "Experiment runner"): running the same ExperimentPlan at --jobs 1
 * and --jobs 8 must produce identical results point for point —
 * identical RunStats (cycles, per-cause stall buckets, thread stats),
 * a byte-identical "procoup-stats-bundle/1" JSON bundle — and the
 * stall accounting identity must hold for every point. Also checks
 * the CompileCache actually serves hits when a cache is shared across
 * runs, and that plan filtering subsets by label substring.
 */

#include <gtest/gtest.h>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/exp/cache.hh"
#include "procoup/exp/harness.hh"
#include "procoup/exp/plan.hh"
#include "procoup/exp/runner.hh"
#include "procoup/exp/suites.hh"
#include "procoup/sim/stats.hh"

namespace {

using namespace procoup;

exp::SweepResult
runTable2(const exp::ExperimentPlan& plan, int jobs,
          exp::CompileCache* cache)
{
    exp::RunnerOptions opts;
    opts.jobs = jobs;
    opts.cache = cache;
    opts.exitOnVerifyFailure = false;
    exp::SweepRunner runner(opts);
    return runner.run(plan);
}

TEST(SweepDeterminism, Table2IdenticalAtAnyJobCount)
{
    const exp::ExperimentPlan plan = exp::table2BaselinePlan();
    // Every registry benchmark in every mode it supports.
    std::size_t expected = 0;
    for (const auto& b : benchmarks::all())
        expected += 4 + (b.hasIdeal() ? 1 : 0);
    ASSERT_EQ(plan.size(), expected);

    exp::CompileCache cache;  // shared: second run must hit
    const exp::SweepResult serial = runTable2(plan, 1, &cache);
    const exp::SweepResult parallel = runTable2(plan, 8, &cache);

    ASSERT_EQ(serial.outcomes.size(), plan.size());
    ASSERT_EQ(parallel.outcomes.size(), plan.size());
    EXPECT_EQ(serial.jobs, 1);
    EXPECT_EQ(parallel.jobs, 8);

    for (std::size_t i = 0; i < plan.size(); ++i) {
        const auto& a = serial.outcomes[i];
        const auto& b = parallel.outcomes[i];
        SCOPED_TRACE(plan.points()[i].label);

        // Outcomes come back in plan order regardless of job count.
        EXPECT_EQ(a.point, &plan.points()[i]);
        EXPECT_EQ(b.point, &plan.points()[i]);

        // Verification succeeded on both sides.
        EXPECT_EQ(a.error, "");
        EXPECT_EQ(b.error, "");

        // Full stats equality: cycles, per-FU issue counts, every
        // stall bucket, memory counters, per-thread stats.
        EXPECT_EQ(a.result.stats, b.result.stats);

        // And the stall accounting identity holds for each point:
        // cycles x FUs == issued + sum of attributed stall cycles.
        EXPECT_TRUE(a.result.stats.accountingBalanced());
    }

    // The JSON bundle a harness would write with --stats-json is
    // byte-identical at any job count.
    EXPECT_EQ(exp::formatStatsBundle(serial),
              exp::formatStatsBundle(parallel));
}

TEST(SweepDeterminism, SharedCacheServesHitsAcrossRuns)
{
    const exp::ExperimentPlan plan = exp::table2BaselinePlan();
    exp::CompileCache cache;

    const exp::SweepResult first = runTable2(plan, 4, &cache);
    // Every Table-2 point has a distinct (source, mode) pair, so the
    // first pass is all misses...
    EXPECT_EQ(first.cacheStats.hits, 0u);
    EXPECT_EQ(first.cacheStats.misses, plan.size());
    for (const auto& o : first.outcomes)
        EXPECT_FALSE(o.compileCached);

    // ...and a second pass over the same plan never recompiles.
    const exp::SweepResult second = runTable2(plan, 4, &cache);
    EXPECT_EQ(second.cacheStats.hits, plan.size());
    EXPECT_EQ(second.cacheStats.misses, 0u);
    for (const auto& o : second.outcomes)
        EXPECT_TRUE(o.compileCached);
}

TEST(SweepDeterminism, RuntimeKnobSweepsShareCompiles)
{
    // Interconnect scheme is runtime-only: five machines that differ
    // only in interconnect must compile once.
    exp::ExperimentPlan plan("cache_sharing");
    const auto& bm = benchmarks::matrix();
    for (auto scheme :
         {config::InterconnectScheme::Full,
          config::InterconnectScheme::TriPort,
          config::InterconnectScheme::DualPort,
          config::InterconnectScheme::SinglePort,
          config::InterconnectScheme::SharedBus})
        plan.addBenchmark(
            config::withInterconnect(config::baseline(), scheme), bm,
            core::SimMode::Coupled,
            exp::ExperimentPlan::benchmarkLabel(
                bm, core::SimMode::Coupled,
                config::withInterconnect(config::baseline(), scheme)));

    exp::CompileCache cache;
    const exp::SweepResult res = runTable2(plan, 4, &cache);
    EXPECT_EQ(res.cacheStats.misses, 1u);
    EXPECT_EQ(res.cacheStats.hits, plan.size() - 1);
}

TEST(SweepDeterminism, DisabledCacheCompilesEveryPoint)
{
    exp::ExperimentPlan plan("nocache");
    const auto& bm = benchmarks::matrix();
    plan.addBenchmark(config::baseline(), bm, core::SimMode::Coupled,
                      "a");
    plan.addBenchmark(config::baseline(), bm, core::SimMode::Coupled,
                      "b");

    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.cacheEnabled = false;
    opts.exitOnVerifyFailure = false;
    exp::SweepRunner runner(opts);
    const exp::SweepResult res = runner.run(plan);
    EXPECT_EQ(res.cacheStats.hits, 0u);
    EXPECT_EQ(res.cacheStats.misses, 2u);
    EXPECT_EQ(res.outcomes[0].result.stats, res.outcomes[1].result.stats);
}

TEST(SweepDeterminism, FilterSubsetsByLabelSubstring)
{
    const exp::ExperimentPlan plan = exp::table2BaselinePlan();
    const exp::ExperimentPlan matrix = plan.filtered("Matrix");
    ASSERT_EQ(matrix.size(), 5u);
    for (const auto& p : matrix.points())
        EXPECT_NE(p.label.find("Matrix"), std::string::npos);
    EXPECT_EQ(plan.filtered("no-such-label").size(), 0u);
}

TEST(SweepDeterminism, LabelLookupFindsEveryPoint)
{
    const exp::ExperimentPlan plan = exp::table2BaselinePlan();
    exp::CompileCache cache;
    const exp::SweepResult res = runTable2(plan, 8, &cache);
    for (const auto& bm : benchmarks::all())
        for (auto mode : core::allSimModes()) {
            if (mode == core::SimMode::Ideal && !bm.hasIdeal())
                continue;
            const auto& o = res.at(exp::ExperimentPlan::benchmarkLabel(
                bm, mode, config::baseline()));
            EXPECT_EQ(o.point->benchmarkId, bm.id);
        }
}

} // namespace
