/** @file End-to-end tests: PCL source through the full compiler onto
 *  the simulator, checking computed results and schedule sanity in
 *  both scheduling modes. */

#include <gtest/gtest.h>

#include "procoup/config/presets.hh"
#include "procoup/sched/compiler.hh"
#include "procoup/sim/simulator.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

using sched::CompileOptions;
using sched::CompileResult;
using sched::ScheduleMode;
using sim::Simulator;

struct RunOutcome
{
    CompileResult compiled;
    sim::RunStats stats;
    std::vector<double> memory;  ///< full data segment as doubles

    double
    at(const std::string& sym, std::uint32_t off = 0) const
    {
        return memory.at(compiled.program.symbol(sym).base + off);
    }
};

RunOutcome
compileAndRun(const std::string& src, ScheduleMode mode,
              const config::MachineConfig& machine = config::baseline())
{
    CompileOptions opts;
    opts.mode = mode;
    RunOutcome out{sched::compile(src, machine, opts), {}, {}};
    Simulator sim(machine, out.compiled.program);
    out.stats = sim.run();
    for (std::uint32_t a = 0; a < out.compiled.program.memorySize; ++a)
        out.memory.push_back(sim.memory().peek(a).asFloat());
    return out;
}

class BothModes : public ::testing::TestWithParam<ScheduleMode> {};

INSTANTIATE_TEST_SUITE_P(
    Modes, BothModes,
    ::testing::Values(ScheduleMode::Single, ScheduleMode::Unrestricted),
    [](const ::testing::TestParamInfo<ScheduleMode>& info) {
        return info.param == ScheduleMode::Single ? "Single"
                                                  : "Unrestricted";
    });

TEST_P(BothModes, StraightLineArithmetic)
{
    const auto out = compileAndRun(
        "(defvar r1 0)"
        "(defvar r2 0.0)"
        "(defun main ()"
        "  (let ((a 6) (b 7))"
        "    (set r1 (+ (* a b) (- b a)))"
        "    (set r2 (/ (float (* a b)) 4.0))))",
        GetParam());
    EXPECT_EQ(out.at("r1"), 43.0);
    EXPECT_DOUBLE_EQ(out.at("r2"), 10.5);
}

TEST_P(BothModes, LoopAccumulation)
{
    const auto out = compileAndRun(
        "(defvar sum 0)"
        "(defvar fsum 0.0)"
        "(defun main ()"
        "  (let ((s 0) (f 0.0))"
        "    (for (i 0 20)"
        "      (set s (+ s i))"
        "      (set f (+ f 0.5)))"
        "    (set sum s)"
        "    (set fsum f)))",
        GetParam());
    EXPECT_EQ(out.at("sum"), 190.0);
    EXPECT_DOUBLE_EQ(out.at("fsum"), 10.0);
}

TEST_P(BothModes, SmallMatrixMultiply)
{
    // 3x3 matmul with runtime loops; checked against a C++ reference.
    const auto out = compileAndRun(
        "(defarray a (3 3) :init-each (+ (* 2.0 r) c))"
        "(defarray b (3 3) :init-each (- (* 1.5 c) r))"
        "(defarray c (3 3))"
        "(defun main ()"
        "  (for (i 0 3) (for (j 0 3)"
        "    (let ((s 0.0))"
        "      (for (k 0 3)"
        "        (set s (+ s (* (aref a i k) (aref b k j)))))"
        "      (aset c i j s)))))",
        GetParam());

    double A[3][3];
    double B[3][3];
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c) {
            A[r][c] = 2.0 * r + c;
            B[r][c] = 1.5 * c - r;
        }
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j) {
            double s = 0.0;
            for (int k = 0; k < 3; ++k)
                s += A[i][k] * B[k][j];
            EXPECT_DOUBLE_EQ(out.at("c", 3 * i + j), s)
                << "c[" << i << "][" << j << "]";
        }
}

TEST_P(BothModes, UnrolledMatchesRolled)
{
    const char* rolled =
        "(defarray v (6) :init-each (* 1.0 i))"
        "(defvar dot 0.0)"
        "(defun main ()"
        "  (let ((s 0.0))"
        "    (for (i 0 6) (set s (+ s (* (aref v i) (aref v i)))))"
        "    (set dot s)))";
    const char* unrolled =
        "(defarray v (6) :init-each (* 1.0 i))"
        "(defvar dot 0.0)"
        "(defun main ()"
        "  (let ((s 0.0))"
        "    (for (i 0 6 :unroll)"
        "      (set s (+ s (* (aref v i) (aref v i)))))"
        "    (set dot s)))";
    const auto r = compileAndRun(rolled, GetParam());
    const auto u = compileAndRun(unrolled, GetParam());
    EXPECT_DOUBLE_EQ(r.at("dot"), 55.0);
    EXPECT_DOUBLE_EQ(u.at("dot"), 55.0);
    // Unrolling must help (fewer cycles): no loop overhead.
    EXPECT_LT(u.stats.cycles, r.stats.cycles);
}

TEST_P(BothModes, PartialUnrollMatchesRolled)
{
    // :unroll 4 with a runtime bound (and a trip count that is not a
    // multiple of the factor, exercising the cleanup loop).
    const char* src =
        "(defarray v (14) :init-each (* 1.0 i))"
        "(defvar n 14)"
        "(defvar dot 0.0)"
        "(defun main ()"
        "  (let ((s 0.0) (lim n))"
        "    (for (i 0 lim :unroll 4)"
        "      (set s (+ s (* (aref v i) (aref v i)))))"
        "    (set dot s)))";
    const auto r = compileAndRun(src, GetParam());
    double expect = 0.0;
    for (int i = 0; i < 14; ++i)
        expect += 1.0 * i * i;
    EXPECT_DOUBLE_EQ(r.at("dot"), expect);
}

TEST(CompileRun, PartialUnrollReducesCycles)
{
    auto run = [](const std::string& opt) {
        return compileAndRun(
            "(defarray v (64) :init-each (* 0.5 i))"
            "(defvar dot 0.0)"
            "(defun main ()"
            "  (let ((s 0.0))"
            "    (for (i 0 64" + opt + ")"
            "      (set s (+ s (aref v i))))"
            "    (set dot s)))",
            ScheduleMode::Unrestricted);
    };
    const auto rolled = run("");
    const auto partial = run(" :unroll 4");
    EXPECT_DOUBLE_EQ(rolled.at("dot"), partial.at("dot"));
    EXPECT_LT(partial.stats.cycles, rolled.stats.cycles);
}

TEST_P(BothModes, IfControl)
{
    const auto out = compileAndRun(
        "(defvar lo 0)"
        "(defvar hi 0)"
        "(defun clamp (x) (if (> x 10) 10 x))"
        "(defun main ()"
        "  (set lo (clamp 3))"
        "  (set hi (clamp 30)))",
        GetParam());
    EXPECT_EQ(out.at("lo"), 3.0);
    EXPECT_EQ(out.at("hi"), 10.0);
}

TEST_P(BothModes, DataDependentLoop)
{
    // Collatz-ish iteration count: genuinely data dependent.
    const auto out = compileAndRun(
        "(defvar steps 0)"
        "(defun main ()"
        "  (let ((n 27) (count 0))"
        "    (while (!= n 1)"
        "      (if (= (mod n 2) 0)"
        "          (set n (/ n 2))"
        "          (set n (+ (* 3 n) 1)))"
        "      (set count (+ count 1)))"
        "    (set steps count)))",
        GetParam());
    EXPECT_EQ(out.at("steps"), 111.0);
}

TEST_P(BothModes, ForallFillsArrayAndJoins)
{
    const auto out = compileAndRun(
        "(defarray a (16))"
        "(defvar done 0)"
        "(defun main ()"
        "  (forall (i 0 16) (aset a i (* 2.0 (float i))))"
        "  (set done 1))",
        GetParam());
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(out.at("a", i), 2.0 * i) << i;
    EXPECT_EQ(out.at("done"), 1.0);
    // 16 children + main.
    EXPECT_EQ(out.stats.threadsSpawned, 17u);
}

TEST_P(BothModes, ForallWithCapturedVariable)
{
    const auto out = compileAndRun(
        "(defarray a (4 8))"
        "(defun main ()"
        "  (for (k 0 4)"
        "    (forall (i 0 8) (aset a k i (+ (* 10.0 k) i)))))",
        GetParam());
    for (int k = 0; k < 4; ++k)
        for (int i = 0; i < 8; ++i)
            EXPECT_DOUBLE_EQ(out.at("a", 8 * k + i), 10.0 * k + i);
}

TEST_P(BothModes, NestedSequentialForalls)
{
    const auto out = compileAndRun(
        "(defarray a (8))"
        "(defvar total 0.0)"
        "(defun main ()"
        "  (forall (i 0 8) (aset a i (float i)))"
        "  (let ((s 0.0))"
        "    (for (i 0 8) (set s (+ s (aref a i))))"
        "    (set total s))"
        "  (forall (i 0 8) (aset a i 0.0)))",
        GetParam());
    EXPECT_DOUBLE_EQ(out.at("total"), 28.0);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(out.at("a", i), 0.0);
}

TEST_P(BothModes, ProducerConsumerThroughPresenceBits)
{
    const auto out = compileAndRun(
        "(defarray cell (1) :int :empty)"
        "(defvar got 0)"
        "(defun producer (x) (put cell 0 (* x 3)))"
        "(defun main ()"
        "  (fork (producer 14))"
        "  (set got (take cell 0)))",
        GetParam());
    EXPECT_EQ(out.at("got"), 42.0);
    EXPECT_GE(out.stats.memParked, 0u);
}

TEST_P(BothModes, MarkInstrumentation)
{
    const auto out = compileAndRun(
        "(defun main ()"
        "  (for (i 0 3) (mark 5)))",
        GetParam());
    EXPECT_EQ(out.stats.markCycles(0, 5).size(), 3u);
}

TEST(CompileRun, ScheduleDiagnosticsPopulated)
{
    CompileOptions opts;
    opts.mode = ScheduleMode::Unrestricted;
    const auto machine = config::baseline();
    const auto result = sched::compile(
        "(defvar out 0)"
        "(defun main ()"
        "  (let ((s 0))"
        "    (for (i 0 10) (set s (+ s i)))"
        "    (set out s)))",
        machine, opts);
    ASSERT_EQ(result.funcInfo.size(), 1u);
    const auto& fi = result.funcInfo[0];
    EXPECT_EQ(fi.name, "main");
    EXPECT_GT(fi.totalRows, 0);
    EXPECT_GT(fi.totalOps, 0);
    EXPECT_GT(result.peakRegistersPerCluster(), 0u);
    EXPECT_EQ(fi.blockRows.size(), static_cast<std::size_t>(4));
}

TEST(CompileRun, SingleModeUsesOneArithCluster)
{
    CompileOptions opts;
    opts.mode = ScheduleMode::Single;
    const auto machine = config::baseline();
    const auto result = sched::compile(
        "(defvar out 0.0)"
        "(defun main ()"
        "  (let ((s 0.0))"
        "    (for (i 0 5) (set s (+ s (float i))))"
        "    (set out s)))",
        machine, opts);
    // All non-branch ops in cluster 0 (clone 0 of main).
    std::set<int> clusters_used;
    for (const auto& inst : result.program.threads[0].instructions)
        for (const auto& slot : inst.slots)
            if (machine.fuConfig(slot.fu).type != isa::UnitType::Branch)
                clusters_used.insert(machine.fuCluster(slot.fu));
    EXPECT_EQ(clusters_used, (std::set<int>{0}));
}

TEST(CompileRun, UnrestrictedModeSpreadsWork)
{
    CompileOptions opts;
    opts.mode = ScheduleMode::Unrestricted;
    const auto machine = config::baseline();
    // Eight independent chains: plenty of ILP to spread.
    std::string src = "(defarray out (8))(defun main () ";
    for (int k = 0; k < 8; ++k)
        src += "(aset out " + std::to_string(k) + " (* (+ 1.0 " +
               std::to_string(k) + ".0) 2.0))";
    src += ")";
    const auto result = sched::compile(src, machine, opts);
    std::set<int> clusters_used;
    for (const auto& inst : result.program.threads[0].instructions)
        for (const auto& slot : inst.slots)
            if (machine.fuConfig(slot.fu).type != isa::UnitType::Branch)
                clusters_used.insert(machine.fuCluster(slot.fu));
    EXPECT_GE(clusters_used.size(), 2u);
}

TEST(CompileRun, UnrestrictedNoSlowerThanSingle)
{
    // With a single thread, using all clusters should never lose by
    // much, and should win when there is parallelism.
    const char* src =
        "(defarray a (8) :init-each (* 1.0 i))"
        "(defarray b (8))"
        "(defun main ()"
        "  (for (i 0 8 :unroll)"
        "    (aset b i (* (aref a i) (aref a i)))))";
    const auto seq = compileAndRun(src, ScheduleMode::Single);
    const auto sts = compileAndRun(src, ScheduleMode::Unrestricted);
    for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(seq.at("b", i), 1.0 * i * i);
        EXPECT_DOUBLE_EQ(sts.at("b", i), 1.0 * i * i);
    }
    EXPECT_LT(sts.stats.cycles, seq.stats.cycles);
}

TEST(CompileRun, CloneRotationSpreadsThreads)
{
    // In Single mode, forall children must land on different clusters
    // (thread-per-element load balancing).
    CompileOptions opts;
    opts.mode = ScheduleMode::Single;
    const auto machine = config::baseline();
    const auto result = sched::compile(
        "(defarray a (8))"
        "(defun main () (forall (i 0 8) (aset a i 1.0)))",
        machine, opts);

    std::set<int> child_clusters;
    for (const auto& t : result.program.threads) {
        if (t.name.rfind("forall", 0) != 0)
            continue;
        for (const auto& inst : t.instructions)
            for (const auto& slot : inst.slots)
                if (machine.fuConfig(slot.fu).type ==
                        isa::UnitType::Memory)
                    child_clusters.insert(machine.fuCluster(slot.fu));
    }
    EXPECT_EQ(child_clusters.size(), 4u);
}

TEST(CompileRun, ValidatorAcceptsAllCompiledPrograms)
{
    // compile() validates internally; a throw here is a compiler bug.
    const char* programs[] = {
        "(defun main () 0)",
        "(defvar x 0)(defun main () (set x 1))",
        "(defarray a (4 4))(defun main ()"
        "  (for (i 0 4) (for (j 0 4) (aset a i j (float (+ i j))))))",
        "(defarray a (4))(defun main () (forall (i 0 4)"
        "  (aset a i (float i))))",
    };
    for (const char* p : programs) {
        SCOPED_TRACE(p);
        for (auto mode :
             {ScheduleMode::Single, ScheduleMode::Unrestricted}) {
            CompileOptions opts;
            opts.mode = mode;
            EXPECT_NO_THROW(sched::compile(p, config::baseline(), opts));
        }
    }
}

} // namespace
} // namespace procoup
