/** @file Unit tests for the ISA module and program validation. */

#include <gtest/gtest.h>

#include "procoup/support/error.hh"
#include "procoup/config/presets.hh"
#include "procoup/config/validate.hh"
#include "procoup/isa/builder.hh"
#include "procoup/isa/opcode.hh"
#include "procoup/isa/program.hh"
#include "procoup/isa/value.hh"
#include "test_util.hh"

namespace procoup {
namespace {

using namespace isa;
using testutil::rr;

TEST(Value, TagsAndConversions)
{
    const Value i = Value::makeInt(-3);
    const Value f = Value::makeFloat(2.5);
    EXPECT_FALSE(i.isFloat());
    EXPECT_TRUE(f.isFloat());
    EXPECT_EQ(i.asInt(), -3);
    EXPECT_DOUBLE_EQ(i.asFloat(), -3.0);
    EXPECT_EQ(f.asInt(), 2);
    EXPECT_DOUBLE_EQ(f.asFloat(), 2.5);
}

TEST(Value, Truthiness)
{
    EXPECT_FALSE(Value::makeInt(0).truthy());
    EXPECT_TRUE(Value::makeInt(-1).truthy());
    EXPECT_FALSE(Value::makeFloat(0.0).truthy());
    EXPECT_TRUE(Value::makeFloat(0.1).truthy());
}

TEST(Value, Equality)
{
    EXPECT_EQ(Value::makeInt(5), Value::makeInt(5));
    EXPECT_FALSE(Value::makeInt(5) == Value::makeFloat(5.0));
}

// --- Opcode classification -----------------------------------------

struct OpcodeUnitCase
{
    Opcode op;
    UnitType unit;
};

class OpcodeUnitTest : public ::testing::TestWithParam<OpcodeUnitCase> {};

TEST_P(OpcodeUnitTest, ExecutesOnExpectedUnit)
{
    EXPECT_EQ(unitTypeOf(GetParam().op), GetParam().unit);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, OpcodeUnitTest,
    ::testing::Values(
        OpcodeUnitCase{Opcode::IADD, UnitType::Integer},
        OpcodeUnitCase{Opcode::IMUL, UnitType::Integer},
        OpcodeUnitCase{Opcode::ILT, UnitType::Integer},
        OpcodeUnitCase{Opcode::MOV, UnitType::Integer},
        OpcodeUnitCase{Opcode::MARK, UnitType::Integer},
        OpcodeUnitCase{Opcode::FADD, UnitType::Float},
        OpcodeUnitCase{Opcode::FDIV, UnitType::Float},
        OpcodeUnitCase{Opcode::ITOF, UnitType::Float},
        OpcodeUnitCase{Opcode::FMOV, UnitType::Float},
        OpcodeUnitCase{Opcode::FGE, UnitType::Float},
        OpcodeUnitCase{Opcode::LD, UnitType::Memory},
        OpcodeUnitCase{Opcode::ST, UnitType::Memory},
        OpcodeUnitCase{Opcode::BR, UnitType::Branch},
        OpcodeUnitCase{Opcode::BT, UnitType::Branch},
        OpcodeUnitCase{Opcode::FORK, UnitType::Branch},
        OpcodeUnitCase{Opcode::ETHR, UnitType::Branch}));

TEST(Opcode, SourceArities)
{
    EXPECT_EQ(opcodeNumSources(Opcode::IADD), 2);
    EXPECT_EQ(opcodeNumSources(Opcode::MOV), 1);
    EXPECT_EQ(opcodeNumSources(Opcode::ST), 3);
    EXPECT_EQ(opcodeNumSources(Opcode::LD), 2);
    EXPECT_EQ(opcodeNumSources(Opcode::BR), 0);
    EXPECT_EQ(opcodeNumSources(Opcode::FORK), -1);
}

TEST(Opcode, RegisterWritingClassification)
{
    EXPECT_TRUE(opcodeWritesRegister(Opcode::IADD));
    EXPECT_TRUE(opcodeWritesRegister(Opcode::LD));
    EXPECT_FALSE(opcodeWritesRegister(Opcode::ST));
    EXPECT_FALSE(opcodeWritesRegister(Opcode::BR));
    EXPECT_FALSE(opcodeWritesRegister(Opcode::ETHR));
    EXPECT_FALSE(opcodeWritesRegister(Opcode::MARK));
}

TEST(MemFlavorTest, TableOneFlavors)
{
    EXPECT_EQ(MemFlavor::plainLoad().pre, MemPre::None);
    EXPECT_EQ(MemFlavor::plainLoad().post, MemPost::Leave);
    EXPECT_EQ(MemFlavor::consumeLoad().pre, MemPre::Full);
    EXPECT_EQ(MemFlavor::consumeLoad().post, MemPost::SetEmpty);
    EXPECT_EQ(MemFlavor::plainStore().post, MemPost::SetFull);
    EXPECT_EQ(MemFlavor::produceStore().pre, MemPre::Empty);
}

TEST(OperationPrint, ReadableForm)
{
    Operation o = op::alu(Opcode::IADD, rr(0, 2), op::reg(rr(0, 0)),
                          op::imm(7));
    const std::string s = o.toString();
    EXPECT_NE(s.find("iadd"), std::string::npos);
    EXPECT_NE(s.find("c0.r2"), std::string::npos);
    EXPECT_NE(s.find("#7"), std::string::npos);
}

// --- Builder and validation ----------------------------------------

TEST(Builder, DataSegmentLayout)
{
    ProgramBuilder pb(6);
    const auto a = pb.data("a", 10);
    const auto b = pb.data("b", 5);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 10u);
    auto t = pb.thread("main", {1});
    t.rowOp(testutil::fuBR0(), op::ethr());
    const Program p = pb.finish(0);
    EXPECT_EQ(p.memorySize, 15u);
    EXPECT_EQ(p.symbol("b").base, 10u);
    EXPECT_EQ(p.symbol("b").size, 5u);
    EXPECT_THROW(p.symbol("missing"), CompileError);
}

TEST(Builder, MultipleThreadsStayValidAfterRealloc)
{
    // ThreadBuilder handles must survive further thread() calls.
    ProgramBuilder pb(6);
    auto t0 = pb.thread("a", {2});
    auto t1 = pb.thread("b", {2});
    auto t2 = pb.thread("c", {2});
    t0.rowOp(testutil::fuBR0(), op::ethr());
    t1.rowOp(testutil::fuBR0(), op::ethr());
    t2.rowOp(testutil::fuBR0(), op::ethr());
    const Program p = pb.finish(0);
    ASSERT_EQ(p.threads.size(), 3u);
    for (const auto& t : p.threads)
        EXPECT_EQ(t.instructions.size(), 1u);
}

TEST(Validate, AcceptsWellFormedProgram)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {4});
    t.rowOp(testutil::fuIU(0),
            op::alu(Opcode::IADD, rr(0, 0), op::imm(1), op::imm(2)));
    t.rowOp(testutil::fuBR0(), op::ethr());
    const Program p = pb.finish(0);
    EXPECT_NO_THROW(config::validateProgram(p, m));
}

TEST(Validate, RejectsWrongUnitClass)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {4});
    // Float add on an integer unit.
    t.rowOp(testutil::fuIU(0),
            op::alu(Opcode::FADD, rr(0, 0), op::fimm(1), op::fimm(2)));
    const Program p = pb.finish(0);
    EXPECT_THROW(config::validateProgram(p, m), CompileError);
}

TEST(Validate, RejectsRemoteSourceRegister)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {4, 4});
    // IU in cluster 0 reading cluster 1's register file.
    t.rowOp(testutil::fuIU(0),
            op::alu(Opcode::IADD, rr(0, 0), op::reg(rr(1, 0)),
                    op::imm(2)));
    const Program p = pb.finish(0);
    EXPECT_THROW(config::validateProgram(p, m), CompileError);
}

TEST(Validate, RejectsTwoOpsOnOneUnitInOneRow)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {4});
    t.row();
    t.add(testutil::fuIU(0),
          op::alu(Opcode::IADD, rr(0, 0), op::imm(1), op::imm(2)));
    t.add(testutil::fuIU(0),
          op::alu(Opcode::ISUB, rr(0, 1), op::imm(1), op::imm(2)));
    const Program p = pb.finish(0);
    EXPECT_THROW(config::validateProgram(p, m), CompileError);
}

TEST(Validate, RejectsBranchTargetOutOfRange)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {1});
    t.rowOp(testutil::fuBR0(), op::br(99));
    const Program p = pb.finish(0);
    EXPECT_THROW(config::validateProgram(p, m), CompileError);
}

TEST(Validate, RejectsRegisterBeyondFrame)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {2});
    t.rowOp(testutil::fuIU(0),
            op::alu(Opcode::IADD, rr(0, 7), op::imm(1), op::imm(2)));
    const Program p = pb.finish(0);
    EXPECT_THROW(config::validateProgram(p, m), CompileError);
}

TEST(Validate, RejectsForkArgumentMismatch)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto child = pb.thread("child", {2});
    child.params({rr(0, 0), rr(0, 1)});
    child.rowOp(testutil::fuBR0(), op::ethr());
    auto main = pb.thread("main", {2});
    main.rowOp(testutil::fuBR0(), op::fork(0, {op::imm(1)}));  // 1 != 2
    main.rowOp(testutil::fuBR0(), op::ethr());
    const Program p = pb.finish(1);
    EXPECT_THROW(config::validateProgram(p, m), CompileError);
}

TEST(Validate, RejectsEntryWithParameters)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {2});
    t.params({rr(0, 0)});
    t.rowOp(testutil::fuBR0(), op::ethr());
    const Program p = pb.finish(0);
    EXPECT_THROW(config::validateProgram(p, m), CompileError);
}

// --- Machine configuration ------------------------------------------

TEST(MachineConfig, BaselineShape)
{
    const auto m = config::baseline();
    EXPECT_EQ(m.clusters.size(), 6u);
    EXPECT_EQ(m.numFus(), 14);
    EXPECT_EQ(m.countUnits(UnitType::Integer), 4);
    EXPECT_EQ(m.countUnits(UnitType::Float), 4);
    EXPECT_EQ(m.countUnits(UnitType::Memory), 4);
    EXPECT_EQ(m.countUnits(UnitType::Branch), 2);
    EXPECT_EQ(m.arithClusters(), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(m.branchClusters(), (std::vector<int>{4, 5}));
    EXPECT_EQ(m.fuCluster(testutil::fuMU(3)), 3);
    EXPECT_EQ(m.fuConfig(testutil::fuFPU(2)).type, UnitType::Float);
    EXPECT_EQ(m.fuInCluster(1, UnitType::Memory), testutil::fuMU(1));
    EXPECT_EQ(m.fuInCluster(4, UnitType::Integer), -1);
}

TEST(MachineConfig, MemoryPresets)
{
    const auto m1 = config::withMem1(config::baseline());
    EXPECT_DOUBLE_EQ(m1.memory.missRate, 0.05);
    const auto m2 = config::withMem2(config::baseline());
    EXPECT_DOUBLE_EQ(m2.memory.missRate, 0.10);
    EXPECT_EQ(m2.memory.missPenaltyMin, 20);
    EXPECT_EQ(m2.memory.missPenaltyMax, 100);
    const auto mn = config::withMemMin(config::baseline());
    EXPECT_DOUBLE_EQ(mn.memory.missRate, 0.0);
}

TEST(MachineConfig, FuMixShape)
{
    for (int iu = 1; iu <= 4; ++iu) {
        for (int fpu = 1; fpu <= 4; ++fpu) {
            const auto m = config::fuMix(iu, fpu);
            EXPECT_EQ(m.countUnits(UnitType::Integer), iu);
            EXPECT_EQ(m.countUnits(UnitType::Float), fpu);
            EXPECT_EQ(m.countUnits(UnitType::Memory), 4);
            EXPECT_EQ(m.countUnits(UnitType::Branch), 1);
        }
    }
}

} // namespace
} // namespace procoup
