/** @file Crash-safe results journal: frame/record round-trips, torn
 *  and corrupted tails, fingerprint invalidation, bit-identical
 *  replay with zero recompiles, and the deterministic retry policy
 *  that backs --retry-faulted and worker respawns. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/exp/backoff.hh"
#include "procoup/exp/harness.hh"
#include "procoup/exp/journal.hh"
#include "procoup/exp/plan.hh"
#include "procoup/exp/runner.hh"
#include "procoup/exp/serialize.hh"

namespace procoup {
namespace {

std::string
tempDir()
{
    char tmpl[] = "/tmp/procoup_journal_XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    return d;
}

exp::ExperimentPlan
smallPlan()
{
    const auto machine = config::baseline();
    exp::ExperimentPlan plan("journal-test");
    plan.addBenchmark(machine, benchmarks::byName("Matrix"),
                      core::SimMode::Coupled);
    plan.addBenchmark(machine, benchmarks::byName("Matrix"),
                      core::SimMode::Sts);
    plan.addBenchmark(machine, benchmarks::byName("LUD"),
                      core::SimMode::Coupled);
    return plan;
}

TEST(Serialize, FrameRoundTripAndCorruptionDetection)
{
    const std::string payload = "the quick brown fox";
    std::string bytes = exp::frame(payload);
    ASSERT_EQ(bytes.size(), exp::kFrameHeaderSize + payload.size());

    std::size_t offset = 0;
    std::string got;
    ASSERT_TRUE(exp::readFrame(bytes, offset, &got));
    EXPECT_EQ(got, payload);
    EXPECT_EQ(offset, bytes.size());

    // Torn tail: every strict prefix fails without advancing.
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::string torn = bytes.substr(0, cut);
        std::size_t off = 0;
        EXPECT_FALSE(exp::readFrame(torn, off, &got)) << cut;
        EXPECT_EQ(off, 0u);
    }

    // A flipped bit anywhere breaks magic, version, length bounds, or
    // the checksum — never yields a wrong payload silently.
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::string evil = bytes;
        evil[i] = static_cast<char>(evil[i] ^ 0x20);
        std::size_t off = 0;
        if (exp::readFrame(evil, off, &got))
            EXPECT_EQ(got, payload) << "flip at byte " << i;
    }

    // Two frames back to back parse in sequence.
    std::string two = exp::frame("a") + exp::frame("bb");
    offset = 0;
    ASSERT_TRUE(exp::readFrame(two, offset, &got));
    EXPECT_EQ(got, "a");
    ASSERT_TRUE(exp::readFrame(two, offset, &got));
    EXPECT_EQ(got, "bb");
    EXPECT_EQ(offset, two.size());
}

TEST(Serialize, OutcomeRecordRoundTrip)
{
    exp::OutcomeRecord rec;
    rec.label = "point-a";
    rec.pointFingerprint = "deadbeefdeadbeef";
    rec.failed = true;
    rec.errorKind = 3;
    rec.errorCycle = 12345;
    rec.error = "deadlock at cycle 12345";
    rec.retries = 2;
    rec.compileCached = true;
    rec.wallMs = 1.5;
    rec.stats.cycles = 777;
    rec.memory.push_back(isa::Value::makeInt(9));
    rec.symbols["out"] = isa::Symbol{4, 2};
    rec.memorySize = 64;

    exp::OutcomeRecord back;
    ASSERT_TRUE(
        exp::decodeOutcomeRecord(exp::encodeOutcomeRecord(rec), &back));
    EXPECT_EQ(back.label, rec.label);
    EXPECT_EQ(back.pointFingerprint, rec.pointFingerprint);
    EXPECT_EQ(back.failed, rec.failed);
    EXPECT_EQ(back.errorKind, rec.errorKind);
    EXPECT_EQ(back.errorCycle, rec.errorCycle);
    EXPECT_EQ(back.error, rec.error);
    EXPECT_EQ(back.retries, rec.retries);
    EXPECT_EQ(back.compileCached, rec.compileCached);
    EXPECT_EQ(back.wallMs, rec.wallMs);
    EXPECT_EQ(back.stats.cycles, 777u);
    ASSERT_EQ(back.memory.size(), 1u);
    EXPECT_TRUE(back.memory[0] == rec.memory[0]);
    ASSERT_EQ(back.symbols.count("out"), 1u);
    EXPECT_EQ(back.symbols["out"].base, 4u);
    EXPECT_EQ(back.symbols["out"].size, 2u);
    EXPECT_EQ(back.memorySize, 64u);

    EXPECT_FALSE(exp::decodeOutcomeRecord("garbage", &back));
}

TEST(Journal, ReplayIsBitIdenticalWithZeroCompiles)
{
    const std::string dir = tempDir();
    const auto plan = smallPlan();

    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.journalDir = dir;
    exp::SweepRunner first(ropts);
    const exp::SweepResult a = first.run(plan);
    EXPECT_EQ(a.replayedPoints, 0u);
    EXPECT_GT(first.cache().stats().compiles, 0u);

    // The journal finalized: every point is loadable from the dir.
    exp::ResultsJournal peek;
    ASSERT_TRUE(peek.open(dir, plan));
    EXPECT_EQ(peek.loadedCount(), plan.size());

    exp::SweepRunner second(ropts);
    const exp::SweepResult b = second.run(plan);
    EXPECT_EQ(b.replayedPoints, plan.size());
    // Zero recompiles: replay never touches the compiler.
    EXPECT_EQ(second.cache().stats().compiles, 0u);

    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_TRUE(b.outcomes[i].replayed);
        EXPECT_TRUE(a.outcomes[i].result.stats ==
                    b.outcomes[i].result.stats);
        EXPECT_TRUE(a.outcomes[i].result.memory ==
                    b.outcomes[i].result.memory);
    }
    // The render-facing JSON is byte-identical too.
    EXPECT_EQ(exp::formatStatsBundle(a), exp::formatStatsBundle(b));
}

TEST(Journal, PartialJournalExecutesOnlyTheRemainder)
{
    const std::string dir = tempDir();
    const auto plan = smallPlan();

    // Record only the first point, as an interrupted sweep would.
    {
        exp::ResultsJournal j;
        ASSERT_TRUE(j.open(dir, plan));
        exp::CompileCache cache;
        exp::RunnerOptions popts;
        const exp::RunOutcome one =
            exp::executeSweepPoint(plan.points()[0], cache, popts);
        j.append(exp::makeOutcomeRecord(
            one, exp::pointFingerprint(plan.points()[0])));
        // No finalize: the WAL alone must carry the resume.
    }

    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.journalDir = dir;
    exp::SweepRunner runner(ropts);
    const exp::SweepResult res = runner.run(plan);
    EXPECT_EQ(res.replayedPoints, 1u);
    EXPECT_TRUE(res.outcomes[0].replayed);
    EXPECT_FALSE(res.outcomes[1].replayed);
    EXPECT_FALSE(res.outcomes[2].replayed);
}

TEST(Journal, TornTailDiscardsOnlyTheTornRecord)
{
    const std::string dir = tempDir();
    const auto plan = smallPlan();

    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.journalDir = dir;
    exp::SweepRunner(ropts).run(plan);

    // Simulate a crash mid-append: chop the finalized journal's last
    // record in half and re-open. The prefix records must survive.
    exp::ResultsJournal peek;
    ASSERT_TRUE(peek.open(dir, plan));
    const std::string path = peek.journalPath();
    std::string bytes;
    ASSERT_TRUE(exp::readWholeFile(path, &bytes));
    ASSERT_GT(bytes.size(), 32u);
    const std::string torn = bytes.substr(0, bytes.size() - 17);
    ASSERT_TRUE(exp::atomicWriteFile(path, torn));

    exp::SweepRunner resumed(ropts);
    const exp::SweepResult res = resumed.run(plan);
    EXPECT_EQ(res.replayedPoints, plan.size() - 1);
    EXPECT_EQ(res.failedCount(), 0u);
}

TEST(Journal, FingerprintChangeInvalidatesOnlyThatPoint)
{
    const std::string dir = tempDir();
    auto plan = smallPlan();

    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.journalDir = dir;
    exp::SweepRunner(ropts).run(plan);

    // Tightening one point's cycle budget changes its fingerprint
    // (and the plan's, landing in fresh journal files) — nothing may
    // replay against the stale record set even though labels match.
    const std::string before =
        exp::pointFingerprint(plan.points()[1]);
    plan.mutablePoints()[1].simOptions.limits.maxCycles = 100000000;
    EXPECT_NE(before, exp::pointFingerprint(plan.points()[1]));

    exp::SweepRunner again(ropts);
    const exp::SweepResult res = again.run(plan);
    EXPECT_EQ(res.replayedPoints, 0u);
}

TEST(Journal, TracerPointsAreNeverJournaled)
{
    const std::string dir = tempDir();
    const auto machine = config::baseline();

    int events = 0;
    exp::ExperimentPlan plan("tracer");
    plan.addBenchmark(machine, benchmarks::byName("Matrix"),
                      core::SimMode::Coupled);
    plan.mutablePoints()[0].tracer =
        [&](const sim::TraceEvent&) { ++events; };

    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.journalDir = dir;
    exp::SweepRunner(ropts).run(plan);
    ASSERT_GT(events, 0);

    // Re-run: the tracer must fire again — a replay would silently
    // drop the observational side effect.
    events = 0;
    exp::SweepRunner again(ropts);
    const exp::SweepResult res = again.run(plan);
    EXPECT_EQ(res.replayedPoints, 0u);
    EXPECT_GT(events, 0);
}

TEST(Journal, FailSafeErrorRecordsReplayToo)
{
    const std::string dir = tempDir();
    auto machine = config::baseline();
    machine.deadlockCycleLimit = 300;

    exp::ExperimentPlan plan("failsafe-journal");
    plan.addSource("deadlock-point", machine,
                   "(defarray c (1) :int :empty)"
                   "(defvar out 0)"
                   "(defun main () (set out (take c 0)))",
                   core::SimMode::Coupled);

    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.failSafe = true;
    ropts.journalDir = dir;
    const exp::SweepResult a = exp::SweepRunner(ropts).run(plan);
    ASSERT_EQ(a.failedCount(), 1u);

    const exp::SweepResult b = exp::SweepRunner(ropts).run(plan);
    EXPECT_EQ(b.replayedPoints, 1u);
    EXPECT_EQ(b.failedCount(), 1u);
    EXPECT_EQ(b.outcomes[0].errorKind, a.outcomes[0].errorKind);
    EXPECT_EQ(b.outcomes[0].errorCycle, a.outcomes[0].errorCycle);
    EXPECT_EQ(b.outcomes[0].error, a.outcomes[0].error);
}

TEST(RetryPolicy, DeterministicBoundedBackoff)
{
    exp::RetryPolicy p;
    p.maxAttempts = 5;
    p.baseDelayMs = 10.0;
    p.maxDelayMs = 50.0;
    EXPECT_EQ(p.maxRetries(), 4);

    for (int retry = 1; retry <= p.maxRetries(); ++retry) {
        const double d = p.delayMs(42, retry);
        // Exponential-with-cap envelope, jitter factor in [1, 2).
        const double base =
            std::min(p.maxDelayMs, 10.0 * (1 << (retry - 1)));
        EXPECT_GE(d, base);
        EXPECT_LT(d, 2.0 * base);
        // Same (seed, retry) -> same delay; different seed differs.
        EXPECT_EQ(d, p.delayMs(42, retry));
        EXPECT_NE(d, p.delayMs(43, retry));
    }
    EXPECT_EQ(exp::RetryPolicy{.maxAttempts = 1}.maxRetries(), 0);
}

TEST(Journal, FinalizePromotesDrainedWalWithoutAppends)
{
    const std::string dir = tempDir();
    const exp::ExperimentPlan plan = smallPlan();

    // First session: journal every point, then close() without
    // finalizing — the state a graceful SIGTERM drain exits in. The
    // complete record set now lives only in the WAL.
    {
        exp::ResultsJournal j;
        ASSERT_TRUE(j.open(dir, plan));
        for (const auto& p : plan.points()) {
            exp::OutcomeRecord rec;
            rec.label = p.label;
            rec.pointFingerprint = exp::pointFingerprint(p);
            j.append(rec);
        }
        j.close();
        std::ifstream wal(j.walPath());
        EXPECT_TRUE(wal.good());
    }

    // Second session: full replay, zero appends, finalize. The
    // records must survive as the finalized journal — not be deleted
    // along with the "empty" WAL.
    {
        exp::ResultsJournal j;
        ASSERT_TRUE(j.open(dir, plan));
        EXPECT_EQ(j.loadedCount(), plan.size());
        j.finalize();
        std::ifstream journal(j.journalPath());
        EXPECT_TRUE(journal.good());
        std::ifstream wal(j.walPath());
        EXPECT_FALSE(wal.good());
    }

    // Third session still replays everything.
    exp::ResultsJournal j;
    ASSERT_TRUE(j.open(dir, plan));
    EXPECT_EQ(j.loadedCount(), plan.size());
    for (const auto& p : plan.points())
        EXPECT_NE(j.find(exp::pointFingerprint(p)), nullptr);
}

} // namespace
} // namespace procoup
