/** @file Tests for the Section 6 area model. */

#include <gtest/gtest.h>

#include "procoup/config/area.hh"
#include "procoup/config/presets.hh"

namespace procoup {
namespace {

using config::estimateArea;
using config::InterconnectScheme;

double
relativeArea(InterconnectScheme s)
{
    const double full = estimateArea(config::baseline()).total();
    return estimateArea(
               config::withInterconnect(config::baseline(), s))
               .total() /
           full;
}

TEST(AreaModel, SchemesOrderByConnectivity)
{
    // More connectivity costs more silicon, monotonically.
    EXPECT_GT(relativeArea(InterconnectScheme::Full), 0.99);
    EXPECT_GT(relativeArea(InterconnectScheme::Full),
              relativeArea(InterconnectScheme::TriPort));
    EXPECT_GT(relativeArea(InterconnectScheme::TriPort),
              relativeArea(InterconnectScheme::DualPort));
    EXPECT_GT(relativeArea(InterconnectScheme::DualPort),
              relativeArea(InterconnectScheme::SinglePort));
}

TEST(AreaModel, TriPortNearThePapersQuote)
{
    // "the interconnection and register file area for Tri-Port is 28%
    // that of complete connection" — a first-order model should land
    // in the right neighbourhood.
    const double rel = relativeArea(InterconnectScheme::TriPort);
    EXPECT_GT(rel, 0.15);
    EXPECT_LT(rel, 0.40);
}

TEST(AreaModel, ScalesWithRegistersAndWidth)
{
    const auto m = config::baseline();
    const double small = estimateArea(m, 32, 32).total();
    const double large = estimateArea(m, 64, 64).total();
    EXPECT_GT(large, 2.0 * small);
}

TEST(AreaModel, BusAreaDominatedByFullScheme)
{
    const auto full = estimateArea(config::baseline());
    const auto shared = estimateArea(config::withInterconnect(
        config::baseline(), InterconnectScheme::SharedBus));
    EXPECT_GT(full.busArea, 10.0 * shared.busArea);
}

} // namespace
} // namespace procoup
