/** @file The shipped .pcl sample programs compile and compute correct
 *  results in every mode (they double as language acceptance tests). */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"

#ifndef PROCOUP_SOURCE_DIR
#error "PROCOUP_SOURCE_DIR must be defined by the build"
#endif

namespace procoup {
namespace {

std::string
readPcl(const std::string& name)
{
    const std::string path =
        std::string(PROCOUP_SOURCE_DIR) + "/examples/pcl/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class PclFiles : public ::testing::TestWithParam<core::SimMode>
{};

INSTANTIATE_TEST_SUITE_P(
    Modes, PclFiles,
    ::testing::Values(core::SimMode::Seq, core::SimMode::Sts,
                      core::SimMode::Tpe, core::SimMode::Coupled),
    [](const ::testing::TestParamInfo<core::SimMode>& i) {
        return core::simModeName(i.param);
    });

TEST_P(PclFiles, Dot)
{
    core::CoupledNode node(config::baseline());
    const auto run = node.runSource(readPcl("dot.pcl"), GetParam());
    double expect = 0.0;
    for (int i = 0; i < 24; ++i)
        expect += (0.5 * i * 2.0) * (6.0 - 0.25 * i);
    EXPECT_NEAR(run.value("dot"), expect, 1e-9);
}

TEST_P(PclFiles, Sieve)
{
    core::CoupledNode node(config::baseline());
    const auto run = node.runSource(readPcl("sieve.pcl"), GetParam());
    EXPECT_EQ(run.intValue("count"), 25);  // primes below 100
}

TEST_P(PclFiles, Heat)
{
    core::CoupledNode node(config::baseline());
    const auto run = node.runSource(readPcl("heat.pcl"), GetParam());

    // C++ reference of the same sweeps.
    double u[34];
    double un[34];
    for (int i = 0; i < 34; ++i)
        u[i] = un[i] = i == 0 ? 10.0 : (i == 33 ? 2.0 : 0.0);
    for (int step = 0; step < 10; ++step) {
        for (int i = 1; i < 33; ++i)
            un[i] = 0.25 * (u[i - 1] + 2.0 * u[i] + u[i + 1]);
        for (int i = 1; i < 33; ++i)
            u[i] = un[i];
    }
    for (int i = 0; i < 34; ++i)
        EXPECT_NEAR(run.value("unew", i), un[i], 1e-9) << i;
}

} // namespace
} // namespace procoup
