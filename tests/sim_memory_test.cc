/** @file Unit tests for the memory system (Table 1 semantics, split
 *  transactions, the statistical latency model, and ordering). */

#include <gtest/gtest.h>

#include "procoup/support/error.hh"
#include "procoup/config/machine.hh"
#include "procoup/sim/memory.hh"
#include "test_util.hh"

namespace procoup {
namespace {

using isa::MemFlavor;
using isa::MemPost;
using isa::MemPre;
using isa::Value;
using sim::MemorySystem;
using testutil::rr;

config::MemoryConfig
fastMem()
{
    config::MemoryConfig c;
    c.hitLatency = 1;
    c.missRate = 0.0;
    return c;
}

std::vector<isa::MemInit>
noInits()
{
    return {};
}

TEST(Memory, PlainStoreThenLoad)
{
    MemorySystem m(fastMem(), 8, noInits());
    m.issueStore(0, 0, 3, MemFlavor::plainStore(), Value::makeInt(42));
    auto done = m.tick(1);
    EXPECT_TRUE(done.empty());
    EXPECT_EQ(m.peek(3).asInt(), 42);
    EXPECT_TRUE(m.isFull(3));

    m.issueLoad(1, 0, 3, MemFlavor::plainLoad(), {rr(0, 1)}, 0);
    done = m.tick(2);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].value.asInt(), 42);
    EXPECT_EQ(done[0].dsts[0], rr(0, 1));
    EXPECT_TRUE(m.idle());
}

TEST(Memory, HitLatencyDelaysCompletion)
{
    auto cfg = fastMem();
    cfg.hitLatency = 3;
    MemorySystem m(cfg, 8, noInits());
    m.issueLoad(0, 0, 0, MemFlavor::plainLoad(), {rr(0, 0)}, 0);
    EXPECT_TRUE(m.tick(1).empty());
    EXPECT_TRUE(m.tick(2).empty());
    EXPECT_EQ(m.tick(3).size(), 1u);
}

TEST(Memory, DefaultWordsAreFullZero)
{
    MemorySystem m(fastMem(), 4, noInits());
    EXPECT_TRUE(m.isFull(2));
    EXPECT_EQ(m.peek(2).asInt(), 0);
}

TEST(Memory, InitsOverrideDefaults)
{
    std::vector<isa::MemInit> inits = {
        {1, Value::makeFloat(2.5), true},
        {2, Value::makeInt(0), false},  // an empty sync cell
    };
    MemorySystem m(fastMem(), 4, inits);
    EXPECT_DOUBLE_EQ(m.peek(1).asFloat(), 2.5);
    EXPECT_FALSE(m.isFull(2));
}

// --- Table 1: all six flavors, parameterized ------------------------

struct FlavorCase
{
    const char* name;
    bool is_load;
    MemFlavor flavor;
    bool cell_full_before;
    bool expect_immediate;   ///< completes without waiting
    bool cell_full_after;    ///< once completed
};

class TableOneTest : public ::testing::TestWithParam<FlavorCase> {};

TEST_P(TableOneTest, PreAndPostConditions)
{
    const auto& p = GetParam();
    std::vector<isa::MemInit> inits = {
        {0, Value::makeInt(7), p.cell_full_before}};
    MemorySystem m(fastMem(), 2, inits);

    if (p.is_load)
        m.issueLoad(0, 0, 0, p.flavor, {rr(0, 0)}, 0);
    else
        m.issueStore(0, 0, 0, p.flavor, Value::makeInt(9));

    auto done = m.tick(1);
    if (p.expect_immediate) {
        if (p.is_load) {
            ASSERT_EQ(done.size(), 1u);
            EXPECT_EQ(done[0].value.asInt(), 7);
        } else {
            EXPECT_EQ(m.peek(0).asInt(), 9);
        }
        EXPECT_EQ(m.isFull(0), p.cell_full_after);
        EXPECT_TRUE(m.idle());
    } else {
        EXPECT_TRUE(done.empty());
        EXPECT_EQ(m.parkedCount(), 1u);
        EXPECT_FALSE(m.idle());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavors, TableOneTest,
    ::testing::Values(
        // load: unconditional / leave as is
        FlavorCase{"plain_load_full", true, MemFlavor::plainLoad(),
                   true, true, true},
        FlavorCase{"plain_load_empty", true, MemFlavor::plainLoad(),
                   false, true, false},
        // load: wait until full / leave full
        FlavorCase{"wait_load_full", true, MemFlavor::waitLoad(),
                   true, true, true},
        FlavorCase{"wait_load_empty_parks", true, MemFlavor::waitLoad(),
                   false, false, false},
        // load: wait until full / set empty
        FlavorCase{"consume_load_full", true, MemFlavor::consumeLoad(),
                   true, true, false},
        FlavorCase{"consume_load_empty_parks", true,
                   MemFlavor::consumeLoad(), false, false, false},
        // store: unconditional / set full
        FlavorCase{"plain_store_empty", false, MemFlavor::plainStore(),
                   false, true, true},
        FlavorCase{"plain_store_full", false, MemFlavor::plainStore(),
                   true, true, true},
        // store: wait until full / leave full
        FlavorCase{"update_store_full", false, MemFlavor::updateStore(),
                   true, true, true},
        FlavorCase{"update_store_empty_parks", false,
                   MemFlavor::updateStore(), false, false, false},
        // store: wait until empty / set full
        FlavorCase{"produce_store_empty", false,
                   MemFlavor::produceStore(), false, true, true},
        FlavorCase{"produce_store_full_parks", false,
                   MemFlavor::produceStore(), true, false, false}),
    [](const ::testing::TestParamInfo<FlavorCase>& info) {
        return info.param.name;
    });

// --- Split transactions: park and wake -------------------------------

TEST(Memory, ParkedLoadWakesOnStore)
{
    std::vector<isa::MemInit> inits = {{0, Value::makeInt(0), false}};
    MemorySystem m(fastMem(), 2, inits);

    m.issueLoad(0, 1, 0, MemFlavor::waitLoad(), {rr(0, 5)}, 2);
    EXPECT_TRUE(m.tick(1).empty());
    EXPECT_EQ(m.parkedCount(), 1u);

    // Producer stores at cycle 5; the parked load completes the same
    // cycle the store arrives.
    m.issueStore(5, 0, 0, MemFlavor::plainStore(), Value::makeInt(33));
    auto done = m.tick(6);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].value.asInt(), 33);
    EXPECT_EQ(done[0].thread, 1);
    EXPECT_EQ(done[0].srcCluster, 2);
    EXPECT_TRUE(m.idle());
    EXPECT_GE(m.stats().parkedCycles, 5u);
}

TEST(Memory, ConsumeLoadGrantsExclusively)
{
    // Two consume-loads park on an empty cell; one store wakes exactly
    // one of them (mutex acquire semantics).
    std::vector<isa::MemInit> inits = {{0, Value::makeInt(0), false}};
    MemorySystem m(fastMem(), 2, inits);

    m.issueLoad(0, 1, 0, MemFlavor::consumeLoad(), {rr(0, 0)}, 0);
    m.issueLoad(0, 2, 0, MemFlavor::consumeLoad(), {rr(0, 0)}, 0);
    EXPECT_TRUE(m.tick(1).empty());
    EXPECT_EQ(m.parkedCount(), 2u);

    m.issueStore(2, 0, 0, MemFlavor::plainStore(), Value::makeInt(1));
    auto done = m.tick(3);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].thread, 1);  // first parked wins
    EXPECT_EQ(m.parkedCount(), 1u);
    EXPECT_FALSE(m.isFull(0));

    // A second store releases the second waiter.
    m.issueStore(4, 0, 0, MemFlavor::plainStore(), Value::makeInt(2));
    done = m.tick(5);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].thread, 2);
    EXPECT_TRUE(m.idle());
}

TEST(Memory, ProduceConsumeChainWakesInOrder)
{
    // produce-store parked on a full cell wakes when a consume-load
    // empties it; the wake cascade happens within one tick.
    std::vector<isa::MemInit> inits = {{0, Value::makeInt(5), true}};
    MemorySystem m(fastMem(), 2, inits);

    m.issueStore(0, 0, 0, MemFlavor::produceStore(), Value::makeInt(6));
    m.tick(1);
    EXPECT_EQ(m.parkedCount(), 1u);

    m.issueLoad(1, 1, 0, MemFlavor::consumeLoad(), {rr(0, 0)}, 0);
    auto done = m.tick(2);
    // The consume-load reads 5 and empties; the parked produce-store
    // wakes and refills with 6.
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].value.asInt(), 5);
    EXPECT_TRUE(m.isFull(0));
    EXPECT_EQ(m.peek(0).asInt(), 6);
    EXPECT_TRUE(m.idle());
}

// --- Ordering ---------------------------------------------------------

TEST(Memory, SameAddressAccessesKeepIssueOrder)
{
    // With a long random miss on the first store, the second access to
    // the same address must not overtake it.
    config::MemoryConfig cfg;
    cfg.hitLatency = 1;
    cfg.missRate = 1.0;  // always miss
    cfg.missPenaltyMin = 50;
    cfg.missPenaltyMax = 50;
    MemorySystem m(cfg, 2, noInits());

    m.issueStore(0, 0, 0, MemFlavor::plainStore(), Value::makeInt(1));
    m.issueLoad(1, 0, 0, MemFlavor::plainLoad(), {rr(0, 0)}, 0);

    std::vector<sim::CompletedLoad> done;
    for (std::uint64_t c = 1; c <= 120 && done.empty(); ++c)
        done = m.tick(c);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].value.asInt(), 1);  // saw the store's value
}

TEST(Memory, MissRateProducesMissesAndLongerLatency)
{
    config::MemoryConfig cfg;
    cfg.hitLatency = 1;
    cfg.missRate = 0.5;
    cfg.missPenaltyMin = 20;
    cfg.missPenaltyMax = 100;
    cfg.seed = 77;
    MemorySystem m(cfg, 1024, noInits());

    for (std::uint32_t a = 0; a < 1000; ++a)
        m.issueLoad(0, 0, a, MemFlavor::plainLoad(), {rr(0, 0)}, 0);

    std::size_t total = 0;
    for (std::uint64_t c = 1; c <= 102; ++c)
        total += m.tick(c).size();
    EXPECT_EQ(total, 1000u);
    EXPECT_TRUE(m.idle());

    const auto& s = m.stats();
    EXPECT_EQ(s.accesses, 1000u);
    EXPECT_EQ(s.hits + s.misses, 1000u);
    EXPECT_NEAR(static_cast<double>(s.misses), 500.0, 60.0);
}

TEST(Memory, DeterministicAcrossRunsWithSameSeed)
{
    auto run = [] {
        config::MemoryConfig cfg;
        cfg.missRate = 0.3;
        cfg.seed = 5;
        MemorySystem m(cfg, 64, {});
        std::vector<std::size_t> completions;
        for (std::uint32_t a = 0; a < 64; ++a)
            m.issueLoad(0, 0, a, MemFlavor::plainLoad(), {rr(0, 0)}, 0);
        for (std::uint64_t c = 1; c <= 110; ++c)
            completions.push_back(m.tick(c).size());
        return completions;
    };
    EXPECT_EQ(run(), run());
}

TEST(Memory, BankConflictsSerializeWhenEnabled)
{
    config::MemoryConfig cfg;
    cfg.hitLatency = 1;
    cfg.numBanks = 2;
    cfg.modelBankConflicts = true;
    MemorySystem m(cfg, 16, {});

    // Four loads to the same bank (addresses 0, 2, 4, 6 mod 2 == 0).
    for (std::uint32_t a = 0; a < 8; a += 2)
        m.issueLoad(0, 0, a, MemFlavor::plainLoad(), {rr(0, 0)}, 0);

    std::size_t at_cycle_1 = m.tick(1).size();
    EXPECT_EQ(at_cycle_1, 1u);  // serialized, one per cycle
    std::size_t rest = 0;
    for (std::uint64_t c = 2; c <= 6; ++c)
        rest += m.tick(c).size();
    EXPECT_EQ(rest, 3u);
}

TEST(Memory, WildAccessThrows)
{
    MemorySystem m(fastMem(), 4, {});
    EXPECT_THROW(
        m.issueLoad(0, 0, 99, MemFlavor::plainLoad(), {rr(0, 0)}, 0),
        SimError);
    EXPECT_THROW(m.peek(4), SimError);
}

} // namespace
} // namespace procoup
