/** @file Differential property test for the simulator hot path.
 *
 *  Feeds randomized PCL programs on randomized machine configurations
 *  through the optimized sim::Simulator and through the retained
 *  SlowReferenceSimulator (the original, unoptimized cycle loop, kept
 *  in tests/slow_reference_sim.hh as an executable spec) and requires
 *  bit-identical RunStats — every counter, every stall bucket, every
 *  per-thread attribution — plus identical final memory images.
 *
 *  The configuration space deliberately covers what the hot-path
 *  optimizations exploit: high memory latencies (quiescent-cycle
 *  fast-forward), mixed unit latencies (completion wheel), all
 *  interconnect schemes (writeback queue order), both arbitration
 *  policies (slot-index scan order), operation caches and bounded
 *  active sets (which disable fast-forward), and synchronizing
 *  memory flavors (parked-transaction wakeups).
 *
 *  The generator only emits programs that terminate: loop bounds are
 *  constants, `take` is always immediately refilled by a dependent
 *  store to the same cell, and stored values are range-reduced so no
 *  intermediate overflows. If a (program, machine) pair still
 *  deadlocks (e.g. a bounded active set starving a forall join), both
 *  simulators must report the identical SimError.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/machine.hh"
#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"
#include "procoup/isa/program.hh"
#include "procoup/sim/simulator.hh"
#include "procoup/sim/stats.hh"
#include "procoup/support/error.hh"
#include "procoup/support/rng.hh"
#include "procoup/support/strings.hh"

#include "slow_reference_sim.hh"

namespace procoup {
namespace {

using isa::Value;

constexpr int kArraySize = 8;

/** Random PCL program generator. Every program defines `arr` (8 int
 *  cells, full), two int globals, a worker procedure, and main. */
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : rng(seed) {}

    bool usesThreads() const { return _usesThreads; }

    std::string generate()
    {
        std::string src;
        src += "(defarray arr (8) :int :init (";
        for (int i = 0; i < kArraySize; ++i)
            src += strCat(rng.uniformInt(-9, 9), i + 1 < kArraySize ? " " : "");
        src += "))\n";
        src += strCat("(defvar g0 ", rng.uniformInt(-9, 9), ")\n");
        src += strCat("(defvar g1 ", rng.uniformInt(-9, 9), ")\n");

        locals = {"p0"};
        inMain = false;
        src += "(defun w (p0)\n";
        src += block(static_cast<int>(rng.uniformInt(2, 3)), 1);
        src += ")\n";

        locals = {"x0", "x1"};
        inMain = true;
        src += "(defun main ()\n";
        src += strCat("  (let ((x0 ", rng.uniformInt(-9, 9), ") (x1 ",
                      rng.uniformInt(-9, 9), "))\n");
        src += block(static_cast<int>(rng.uniformInt(3, 6)), 1);
        src += "))\n";
        return src;
    }

  private:
    /** An in-range array index: (mod e 8) may be negative, the +64
     *  re-biases before the final reduction. */
    std::string index(int depth)
    {
        return strCat("(mod (+ 64 (mod ", expr(depth), " 8)) 8)");
    }

    /** An integer expression over locals, globals, and arr. Products
     *  are range-reduced on the spot so no value can overflow. */
    std::string expr(int depth)
    {
        const auto leaf = [&]() -> std::string {
            switch (rng.uniformInt(0, 3)) {
              case 0: return strCat(rng.uniformInt(-9, 9));
              case 1: return "g0";
              case 2: return "g1";
              default:
                return locals.empty()
                           ? strCat(rng.uniformInt(-9, 9))
                           : locals[static_cast<std::size_t>(
                                 rng.uniformInt(
                                     0, static_cast<std::int64_t>(
                                            locals.size()) -
                                            1))];
            }
        };
        if (depth <= 0 || rng.chance(0.3))
            return leaf();
        switch (rng.uniformInt(0, 7)) {
          case 0:
            return strCat("(+ ", expr(depth - 1), " ", expr(depth - 1),
                          ")");
          case 1:
            return strCat("(- ", expr(depth - 1), " ", expr(depth - 1),
                          ")");
          case 2:
            return strCat("(mod (* ", expr(depth - 1), " ",
                          expr(depth - 1), ") 9973)");
          case 3:
            return strCat("(mod ", expr(depth - 1), " ",
                          rng.uniformInt(2, 9), ")");
          case 4:
            return strCat("(< ", expr(depth - 1), " ", expr(depth - 1),
                          ")");
          case 5:
            return strCat("(>= ", expr(depth - 1), " ",
                          expr(depth - 1), ")");
          case 6:
            return strCat("(not ", expr(depth - 1), ")");
          default:
            return strCat("(aref arr ", index(depth - 1), ")");
        }
    }

    /** A range-reduced expression, safe to store anywhere. */
    std::string boundedExpr(int depth)
    {
        return strCat("(mod ", expr(depth), " 9973)");
    }

    std::string statement(int nest)
    {
        const std::string pad(static_cast<std::size_t>(nest) * 2 + 2,
                              ' ');
        // Threading statements only at main's top nesting level, and
        // no further nesting below depth 3 (keeps loop products — and
        // with them simulated cycle counts — small).
        const bool may_thread = inMain && nest <= 1;
        const bool may_nest = nest < 3;
        const std::int64_t kind =
            rng.uniformInt(0, may_thread ? 11 : (may_nest ? 8 : 4));
        switch (kind) {
          case 0:   // assign a local
            if (!locals.empty())
                return strCat(
                    pad, "(set ",
                    locals[static_cast<std::size_t>(rng.uniformInt(
                        0,
                        static_cast<std::int64_t>(locals.size()) - 1))],
                    " ", boundedExpr(2), ")\n");
            [[fallthrough]];
          case 1:   // assign a global
            return strCat(pad, "(set ", rng.chance(0.5) ? "g0" : "g1",
                          " ", boundedExpr(2), ")\n");
          case 2:   // plain store
            return strCat(pad, "(aset arr ", index(1), " ",
                          boundedExpr(2), ")\n");
          case 3: { // atomic update: take empties, the dependent
                    // store to the same cell refills — never leaves
                    // an empty cell behind.
            const std::string idx = index(1);
            return strCat(pad, "(aset arr ", idx, " (+ 1 (take arr ",
                          idx, ")))\n");
          }
          case 4:   // synchronizing load (cells are full outside the
                    // take/store window above)
            return strCat(pad, "(set ", rng.chance(0.5) ? "g0" : "g1",
                          " (wait-load arr ", index(1), "))\n");
          case 5: { // single-arm conditional over a begin block
            std::string s = strCat(pad, "(if (< ", expr(1), " ",
                                   expr(1), ") (begin\n");
            s += block(static_cast<int>(rng.uniformInt(1, 2)),
                       nest + 1);
            s += pad + "))\n";
            return s;
          }
          case 6: { // bounded loop
            const std::string v = strCat("f", nest);
            std::string s =
                strCat(pad, "(for (", v, " 0 ",
                       rng.uniformInt(2, 3), ")\n");
            locals.push_back(v);
            s += block(static_cast<int>(rng.uniformInt(1, 3)),
                       nest + 1);
            locals.pop_back();
            s += pad + ")\n";
            return s;
          }
          case 7:   // instrumentation
            return strCat(pad, "(mark ", rng.uniformInt(0, 99), ")\n");
          case 8:   // inline procedure call (macro-expanded)
            if (inMain)
                return strCat(pad, "(w ", boundedExpr(1), ")\n");
            return strCat(pad, "(set g0 ", boundedExpr(2), ")\n");
          case 9:   // fire-and-forget thread
            _usesThreads = true;
            return strCat(pad, "(fork (w ", boundedExpr(1), "))\n");
          default: { // parallel loop; body sees only the index and
                     // globals (capture limit)
            _usesThreads = true;
            const std::string v = strCat("q", nest);
            std::string s = strCat(pad, "(forall (", v, " 0 ",
                                   rng.uniformInt(2, 4), ")\n");
            std::vector<std::string> saved;
            saved.swap(locals);
            locals.push_back(v);
            const bool saved_in_main = inMain;
            inMain = false;
            s += block(static_cast<int>(rng.uniformInt(1, 3)),
                       nest + 1);
            inMain = saved_in_main;
            locals.swap(saved);
            s += pad + ")\n";
            return s;
          }
        }
    }

    std::string block(int statements, int nest)
    {
        std::string s;
        for (int i = 0; i < statements; ++i)
            s += statement(nest);
        return s;
    }

    Rng rng;
    std::vector<std::string> locals;
    bool inMain = false;
    bool _usesThreads = false;
};

/** A random machine around the baseline structure: the compiler's
 *  cluster assumptions hold, everything the hot path depends on
 *  varies. */
config::MachineConfig
randomMachine(Rng& rng, bool program_uses_threads)
{
    auto m = config::baseline();

    const int lat_pick[] = {1, 1, 1, 2, 4, 20, 60, 120};
    m.memory.hitLatency =
        lat_pick[rng.uniformInt(0, 7)];
    if (rng.chance(0.4)) {
        m.memory.missRate = rng.chance(0.5) ? 0.05 : 0.3;
        m.memory.missPenaltyMin = 20;
        m.memory.missPenaltyMax = rng.chance(0.5) ? 100 : 400;
    }
    m.memory.numBanks = static_cast<int>(rng.uniformInt(1, 4));
    m.memory.modelBankConflicts = rng.chance(0.3);
    m.memory.seed = rng.next();

    const config::InterconnectScheme schemes[] = {
        config::InterconnectScheme::Full,
        config::InterconnectScheme::TriPort,
        config::InterconnectScheme::DualPort,
        config::InterconnectScheme::SinglePort,
        config::InterconnectScheme::SharedBus,
    };
    m.interconnect = schemes[rng.uniformInt(0, 4)];
    if (rng.chance(0.5))
        m.arbitration = config::ArbitrationPolicy::RoundRobin;

    if (rng.chance(0.5))
        for (auto& cluster : m.clusters)
            for (auto& fu : cluster.units)
                fu.latency = static_cast<int>(rng.uniformInt(1, 4));

    if (rng.chance(0.25)) {
        m.opCache.enabled = true;
        m.opCache.linesPerUnit = rng.chance(0.5) ? 2 : 8;
        m.opCache.rowsPerLine = rng.chance(0.5) ? 1 : 4;
        m.opCache.missPenalty = rng.chance(0.5) ? 2 : 8;
    }

    if (rng.chance(0.3)) {
        // A bounded active set can starve a forall join outright
        // (parent holds a slot while blocked on the children); only
        // pair it with threaded programs when idle swap-out can
        // rotate the parent out.
        if (program_uses_threads) {
            m.maxActiveThreads = static_cast<int>(rng.uniformInt(4, 6));
            m.swapOutIdleCycles = rng.chance(0.5) ? 5 : 40;
        } else {
            m.maxActiveThreads = static_cast<int>(rng.uniformInt(1, 4));
            if (rng.chance(0.5))
                m.swapOutIdleCycles = rng.chance(0.5) ? 5 : 40;
        }
    }
    return m;
}

/** Runs longer than this are skipped rather than replayed on the
 *  reference simulator, whose whole point is to be slow. */
constexpr std::uint64_t kCycleCap = 250000;

struct Observed
{
    bool threw = false;
    bool capped = false;
    std::string error;
    sim::RunStats stats;
    std::vector<std::pair<Value, bool>> memory;
};

template <typename Sim>
Observed
observe(const config::MachineConfig& machine, const isa::Program& prog)
{
    Observed o;
    Sim s(machine, prog);
    try {
        while (s.step()) {
            if (s.cycle() > kCycleCap) {
                o.capped = true;
                return o;
            }
        }
        o.stats = s.stats();
    } catch (const SimError& e) {
        o.threw = true;
        o.error = e.what();
        return o;
    }
    for (std::uint32_t a = 0; a < s.memory().size(); ++a)
        o.memory.emplace_back(s.memory().peek(a), s.memory().isFull(a));
    return o;
}

TEST(SimHotpathProperty, OptimizedMatchesReferenceSimulator)
{
    int ran = 0;
    int deadlocks = 0;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        Rng rng(seed * 0x9e3779b97f4a7c15ull);
        ProgramGen gen(rng.next());
        const std::string src = gen.generate();
        const config::MachineConfig machine =
            randomMachine(rng, gen.usesThreads());

        core::CoupledNode node(machine);
        isa::Program prog;
        try {
            prog = node.compile(src, core::SimMode::Coupled).program;
        } catch (const CompileError& e) {
            FAIL() << "generator emitted uncompilable source (seed "
                   << seed << "): " << e.what() << "\n"
                   << src;
        }

        const Observed fast = observe<sim::Simulator>(machine, prog);
        if (fast.capped)
            continue;  // too long to replay on the reference sim
        const Observed ref =
            observe<simtest::SlowReferenceSimulator>(machine, prog);
        ASSERT_FALSE(ref.capped) << "seed " << seed
                                 << ": reference ran past the cap but "
                                    "the optimized sim finished";

        ASSERT_EQ(fast.threw, ref.threw)
            << "seed " << seed << ": one simulator deadlocked\n"
            << (fast.threw ? fast.error : ref.error) << "\n"
            << src;
        if (fast.threw) {
            EXPECT_EQ(fast.error, ref.error) << "seed " << seed;
            ++deadlocks;
            continue;
        }
        ASSERT_TRUE(fast.stats == ref.stats)
            << "seed " << seed << ": RunStats diverged (cycles "
            << fast.stats.cycles << " vs " << ref.stats.cycles
            << ")\n"
            << src;
        ASSERT_EQ(fast.memory.size(), ref.memory.size());
        for (std::size_t a = 0; a < fast.memory.size(); ++a) {
            ASSERT_TRUE(fast.memory[a].first == ref.memory[a].first &&
                        fast.memory[a].second == ref.memory[a].second)
                << "seed " << seed << ": memory image diverged at "
                << a << "\n"
                << src;
        }
        ++ran;
    }
    // The point is differential coverage, not deadlock hunting: the
    // overwhelming majority of cases must complete.
    EXPECT_GE(ran, 40) << "too few comparable runs (deadlocks: "
                       << deadlocks << ")";
}

/** The conservation identity holds on the fast-forward path too
 *  (high memory latency ⇒ long quiescent spans are bulk-charged). */
TEST(SimHotpathProperty, StallConservationAcrossFastForward)
{
    auto m = config::baseline();
    m.memory.hitLatency = 150;
    core::CoupledNode node(m);
    const auto run = node.runBenchmark(
        benchmarks::byName("Matrix"), core::SimMode::Coupled);
    const auto& st = run.stats;
    std::uint64_t attributed = 0;
    for (const auto& counts : st.stallsByFu)
        for (const auto c : counts)
            attributed += c;
    EXPECT_EQ(st.cycles * st.stallsByFu.size(), attributed);
}

} // namespace
} // namespace procoup
