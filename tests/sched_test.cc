/** @file Unit tests for the static scheduler: schedule validity
 *  invariants, placement behaviour, copy insertion, and the
 *  fallthrough-branch peephole. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "procoup/config/presets.hh"
#include "procoup/config/validate.hh"
#include "procoup/ir/frontend.hh"
#include "procoup/opt/passes.hh"
#include "procoup/sched/compiler.hh"
#include "procoup/sched/scheduler.hh"
#include "procoup/sim/simulator.hh"
#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/core/node.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

using sched::CompileOptions;
using sched::ScheduleMode;

/**
 * Structural invariants every emitted schedule must satisfy (beyond
 * what validateProgram already enforces):
 *  - a true dependence never has producer and consumer in the same
 *    row (the consumer would read a stale value);
 *  - every register read in a row was written by an earlier row, a
 *    FORK parameter, or is never written at all (constant zero).
 */
void
checkScheduleInvariants(const isa::Program& prog,
                        const config::MachineConfig& machine)
{
    config::validateProgram(prog, machine);
    for (const auto& t : prog.threads) {
        // (cluster, reg) -> first row writing it.
        std::map<std::pair<int, int>, std::size_t> first_write;
        for (std::size_t row = 0; row < t.instructions.size(); ++row)
            for (const auto& slot : t.instructions[row].slots)
                for (const auto& d : slot.op.dsts) {
                    auto key = std::make_pair<int, int>(d.cluster,
                                                        d.index);
                    if (!first_write.count(key))
                        first_write[key] = row;
                }

        for (std::size_t row = 0; row < t.instructions.size(); ++row) {
            std::set<std::pair<int, int>> written_this_row;
            for (const auto& slot : t.instructions[row].slots)
                for (const auto& d : slot.op.dsts)
                    written_this_row.insert({d.cluster, d.index});

            for (const auto& slot : t.instructions[row].slots) {
                for (const auto& s : slot.op.srcs) {
                    if (!s.isReg())
                        continue;
                    const auto key = std::make_pair<int, int>(
                        s.reg().cluster, s.reg().index);
                    // Reading a value written first in THIS row is a
                    // same-row true dependence unless the reg is also
                    // a legitimate WAR (write-after-read) — allowed
                    // only if some EARLIER row or a param wrote it.
                    auto it = first_write.find(key);
                    const bool param =
                        std::find(t.paramHomes.begin(),
                                  t.paramHomes.end(),
                                  s.reg()) != t.paramHomes.end();
                    if (it != first_write.end() && it->second == row &&
                            !param) {
                        // Must be a WAR in the same row; a true dep
                        // would mean no earlier write exists at all.
                        ADD_FAILURE()
                            << "thread " << t.name << " row " << row
                            << ": reads " << s.reg().toString()
                            << " first written in the same row";
                    }
                }
            }
        }
    }
}

isa::Program
compileFor(const std::string& src, ScheduleMode mode,
           const config::MachineConfig& machine)
{
    CompileOptions opts;
    opts.mode = mode;
    return sched::compile(src, machine, opts).program;
}

const char* kLoopy =
    "(defarray a (16) :init-each (* 1.0 i))"
    "(defvar out 0.0)"
    "(defun main ()"
    "  (let ((s 0.0))"
    "    (for (i 0 16)"
    "      (if (> (aref a i) 7.0)"
    "          (set s (+ s (aref a i)))"
    "          (set s (- s 0.5))))"
    "    (set out s)))";

const char* kParallel =
    "(defarray a (8) :init-each (* 1.0 i))"
    "(defarray b (8))"
    "(defun main ()"
    "  (for (i 0 8 :unroll)"
    "    (aset b i (+ (* (aref a i) 2.0) 1.0))))";

const char* kThreaded =
    "(defarray a (12))"
    "(defun main () (forall (i 0 12) (aset a i (float (* i i)))))";

class ScheduleInvariants
    : public ::testing::TestWithParam<ScheduleMode>
{};

INSTANTIATE_TEST_SUITE_P(
    Modes, ScheduleInvariants,
    ::testing::Values(ScheduleMode::Single, ScheduleMode::Unrestricted),
    [](const ::testing::TestParamInfo<ScheduleMode>& i) {
        return i.param == ScheduleMode::Single ? "Single"
                                               : "Unrestricted";
    });

TEST_P(ScheduleInvariants, HoldOnRepresentativePrograms)
{
    const auto machine = config::baseline();
    for (const char* src : {kLoopy, kParallel, kThreaded}) {
        SCOPED_TRACE(src);
        checkScheduleInvariants(compileFor(src, GetParam(), machine),
                                machine);
    }
}

TEST_P(ScheduleInvariants, HoldOnUnitMixMachines)
{
    for (int iu = 1; iu <= 4; iu += 3)
        for (int fpu = 1; fpu <= 4; fpu += 3) {
            const auto machine = config::fuMix(iu, fpu);
            SCOPED_TRACE(machine.name);
            checkScheduleInvariants(
                compileFor(kLoopy, GetParam(), machine), machine);
            checkScheduleInvariants(
                compileFor(kThreaded, GetParam(), machine), machine);
        }
}

TEST(Scheduler, BranchIsAlwaysInTheLastRowOfItsBlock)
{
    // After target patching, a conditional branch row must be the last
    // chance for its block: every row reachable after it must be a
    // branch target or the row right after it. Weaker observable
    // check: BT/BF ops never precede non-branch ops of the same block
    // in a way that strands them — covered by execution tests; here
    // we check the terminator rows contain the control op.
    const auto machine = config::baseline();
    const auto prog =
        compileFor(kLoopy, ScheduleMode::Unrestricted, machine);
    // Any row containing BT/BF must have no ops in later rows that
    // are unreachable: execution equivalence is tested elsewhere;
    // structurally we require each BT/BF to be in some row whose
    // successor row is a valid fall-through (target of nothing odd).
    for (const auto& t : prog.threads)
        for (const auto& inst : t.instructions)
            for (const auto& slot : inst.slots)
                if (isa::opcodeIsBranch(slot.op.opcode)) {
                    EXPECT_LT(slot.op.branchTarget,
                              t.instructions.size());
                }
}

TEST(Scheduler, SingleModeKeepsArithOpsInOneCluster)
{
    const auto machine = config::baseline();
    const auto prog =
        compileFor(kLoopy, ScheduleMode::Single, machine);
    std::set<int> clusters;
    for (const auto& inst : prog.threads[0].instructions)
        for (const auto& slot : inst.slots)
            if (machine.fuConfig(slot.fu).type !=
                    isa::UnitType::Branch)
                clusters.insert(machine.fuCluster(slot.fu));
    EXPECT_EQ(clusters.size(), 1u);
}

TEST(Scheduler, UnrestrictedUsesMultipleClustersWhenParallel)
{
    const auto machine = config::baseline();
    const auto prog =
        compileFor(kParallel, ScheduleMode::Unrestricted, machine);
    std::set<int> clusters;
    for (const auto& inst : prog.threads[0].instructions)
        for (const auto& slot : inst.slots)
            if (machine.fuConfig(slot.fu).type !=
                    isa::UnitType::Branch)
                clusters.insert(machine.fuCluster(slot.fu));
    EXPECT_GE(clusters.size(), 3u);
}

TEST(Scheduler, CloneRotationChangesClusterOrders)
{
    // In Unrestricted mode, forall clones get rotated cluster orders;
    // their first arithmetic op should not all land on cluster 0.
    CompileOptions opts;
    opts.mode = ScheduleMode::Unrestricted;
    const auto machine = config::baseline();
    const auto result = sched::compile(kThreaded, machine, opts);
    std::set<int> first_clusters;
    for (const auto& t : result.program.threads) {
        if (t.name.rfind("forall", 0) != 0)
            continue;
        for (const auto& inst : t.instructions) {
            bool found = false;
            for (const auto& slot : inst.slots)
                if (machine.fuConfig(slot.fu).type !=
                        isa::UnitType::Branch) {
                    first_clusters.insert(
                        machine.fuCluster(slot.fu));
                    found = true;
                    break;
                }
            if (found)
                break;
        }
    }
    EXPECT_GE(first_clusters.size(), 2u);
}

TEST(Scheduler, NoFallthroughBranchesRemain)
{
    const auto machine = config::baseline();
    for (auto mode :
         {ScheduleMode::Single, ScheduleMode::Unrestricted}) {
        const auto prog = compileFor(kLoopy, mode, machine);
        for (const auto& t : prog.threads)
            for (std::size_t row = 0; row < t.instructions.size();
                 ++row)
                for (const auto& slot : t.instructions[row].slots)
                    if (slot.op.opcode == isa::Opcode::BR) {
                        EXPECT_NE(slot.op.branchTarget, row + 1)
                            << "fallthrough BR survived in row "
                            << row;
                    }
    }
}

TEST(Scheduler, ReportsCopiesWhenValuesHaveManyConsumers)
{
    // One value consumed by many clusters: two consumers ride the
    // producer's destination slots; the rest need MOVs.
    CompileOptions opts;
    opts.mode = ScheduleMode::Unrestricted;
    const auto machine = config::baseline();
    const auto result = sched::compile(
        "(defarray v (1) :init-each 3.0)"
        "(defarray out (8))"
        "(defun main ()"
        "  (let ((x (aref v 0)))"
        "    (for (k 0 8 :unroll)"
        "      (aset out k (* x (float (+ k 1)))))))",
        machine, opts);
    int total_copies = 0;
    for (const auto& fi : result.funcInfo)
        total_copies += fi.copiesInserted;
    EXPECT_GE(total_copies, 1);
}

TEST(Scheduler, DeepPipelinesSpreadDependentRows)
{
    // With a 4-cycle FPU, a dependent FP chain's schedule must place
    // consumers at least 4 rows after producers... rows encode order,
    // not time, so instead check the dynamic effect: the chain takes
    // ~4 cycles per link.
    auto machine = config::baseline();
    for (auto& cluster : machine.clusters)
        for (auto& u : cluster.units)
            if (u.type == isa::UnitType::Float)
                u.latency = 4;

    CompileOptions opts;
    opts.mode = ScheduleMode::Unrestricted;
    const auto result = sched::compile(
        "(defarray seed (1) :init-each 1.5)"
        "(defvar out 0.0)"
        "(defun main ()"
        "  (let ((x (aref seed 0)))"
        "    (for (k 0 10 :unroll) (set x (* x 1.01)))"
        "    (set out x)))",
        machine, opts);

    sim::Simulator s(machine, result.program);
    const auto stats = s.run();
    EXPECT_GE(stats.cycles, 40u);  // 10 links x 4 cycles
    EXPECT_LE(stats.cycles, 55u);
}

TEST(Scheduler, ParamHomesMatchForkArity)
{
    CompileOptions opts;
    opts.mode = ScheduleMode::Unrestricted;
    const auto machine = config::baseline();
    const auto result = sched::compile(
        "(defarray out (4))"
        "(defun child (a b) (aset out a (float b)))"
        "(defun main () (fork (child 1 7)))",
        machine, opts);
    int children = 0;
    for (const auto& t : result.program.threads) {
        if (t.name.rfind("child", 0) != 0)
            continue;
        ++children;
        EXPECT_EQ(t.paramHomes.size(), 2u);
        // Homes must be within the declared frames.
        for (const auto& p : t.paramHomes)
            EXPECT_LT(p.index, t.regCount[p.cluster]);
    }
    EXPECT_EQ(children, 4);  // one clone per arithmetic cluster

    sim::Simulator s(machine, result.program);
    s.run();
    EXPECT_DOUBLE_EQ(s.memory().peek(
        result.program.symbol("out").base + 1).asFloat(), 7.0);
}

TEST(Scheduler, InvariantsHoldAcrossTheFullBenchmarkMatrix)
{
    // Sweep: every benchmark x every applicable mode x three machine
    // shapes. Anything the list scheduler emits must satisfy the
    // structural invariants (validated program, no same-row true
    // dependences).
    const std::vector<config::MachineConfig> machines = {
        config::baseline(),
        config::fuMix(2, 1),
        config::withInterconnect(config::baseline(),
                                 config::InterconnectScheme::TriPort),
    };
    for (const auto& machine : machines) {
        for (const auto& b : benchmarks::all()) {
            for (auto mode : core::allSimModes()) {
                if (mode == core::SimMode::Ideal && !b.hasIdeal())
                    continue;
                SCOPED_TRACE(machine.name + "/" + b.name + "/" +
                             core::simModeName(mode));
                sched::CompileOptions opts = core::optionsFor(mode);
                const auto result = sched::compile(
                    b.forMode(mode), machine, opts);
                checkScheduleInvariants(result.program, machine);
            }
        }
    }
}

} // namespace
} // namespace procoup
