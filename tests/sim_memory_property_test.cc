/** @file Property test: random sequences of flavored memory accesses
 *  against an independent, timing-free reference model of Table 1's
 *  presence-bit semantics. */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "procoup/config/machine.hh"
#include "procoup/sim/memory.hh"
#include "procoup/support/rng.hh"
#include "test_util.hh"

namespace procoup {
namespace {

using isa::MemFlavor;
using isa::Value;
using sim::MemorySystem;

constexpr int kWords = 4;

struct Access
{
    bool is_load = true;
    std::uint32_t addr = 0;
    MemFlavor flavor;
    std::int64_t store_value = 0;
    int id = 0;
};

/**
 * Reference model: words with presence bits and one FIFO park queue
 * per address, processed strictly in issue order with wake rescans —
 * structured as straight-line interpretation, independent of the
 * simulator's event machinery.
 */
struct Reference
{
    struct Word
    {
        std::int64_t value = 0;
        bool full = true;
    };

    std::vector<Word> words{kWords};
    std::map<std::uint32_t, std::deque<Access>> parked;
    std::map<int, std::int64_t> loads;  ///< access id -> loaded value

    bool
    preOk(const Access& a) const
    {
        switch (a.flavor.pre) {
          case isa::MemPre::None:  return true;
          case isa::MemPre::Full:  return words[a.addr].full;
          case isa::MemPre::Empty: return !words[a.addr].full;
        }
        return false;
    }

    /** @return true if the presence bit changed */
    bool
    perform(const Access& a)
    {
        Word& w = words[a.addr];
        if (a.is_load)
            loads[a.id] = w.value;
        else
            w.value = a.store_value;
        const bool was = w.full;
        if (a.flavor.post == isa::MemPost::SetFull)
            w.full = true;
        else if (a.flavor.post == isa::MemPost::SetEmpty)
            w.full = false;
        return w.full != was;
    }

    void
    wake(std::uint32_t addr)
    {
        auto it = parked.find(addr);
        if (it == parked.end())
            return;
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (auto q = it->second.begin(); q != it->second.end();
                 ++q) {
                if (!preOk(*q))
                    continue;
                Access a = *q;
                it->second.erase(q);
                perform(a);
                progressed = true;
                break;
            }
        }
        if (it->second.empty())
            parked.erase(it);
    }

    void
    submit(const Access& a)
    {
        if (!preOk(a)) {
            parked[a.addr].push_back(a);
            return;
        }
        if (perform(a))
            wake(a.addr);
    }

    std::size_t
    parkedCount() const
    {
        std::size_t n = 0;
        for (const auto& [addr, q] : parked)
            n += q.size();
        return n;
    }
};

MemFlavor
randomFlavor(Rng& rng, bool is_load)
{
    if (is_load) {
        switch (rng.uniformInt(0, 2)) {
          case 0: return MemFlavor::plainLoad();
          case 1: return MemFlavor::waitLoad();
          default: return MemFlavor::consumeLoad();
        }
    }
    switch (rng.uniformInt(0, 2)) {
      case 0: return MemFlavor::plainStore();
      case 1: return MemFlavor::updateStore();
      default: return MemFlavor::produceStore();
    }
}

class MemoryPropertySeeds : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryPropertySeeds,
                         ::testing::Range(1, 17));

TEST_P(MemoryPropertySeeds, MatchesReferenceSemantics)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);

    config::MemoryConfig cfg;  // 1-cycle, no misses: pure semantics
    MemorySystem mem(cfg, kWords, {});
    Reference ref;

    const int n = 60;
    std::vector<Access> accesses;
    for (int i = 0; i < n; ++i) {
        Access a;
        a.id = i;
        a.is_load = rng.chance(0.5);
        a.addr = static_cast<std::uint32_t>(
            rng.uniformInt(0, kWords - 1));
        a.flavor = randomFlavor(rng, a.is_load);
        a.store_value = rng.uniformInt(1, 999);
        accesses.push_back(a);
    }

    // Issue one access per cycle (so arrival order == issue order,
    // matching the reference's sequential processing).
    std::map<int, std::int64_t> sim_loads;
    std::uint64_t cycle = 0;
    for (const auto& a : accesses) {
        if (a.is_load)
            mem.issueLoad(cycle, /*thread=*/a.id, a.addr, a.flavor,
                          {testutil::rr(0, 0)}, 0);
        else
            mem.issueStore(cycle, a.id, a.addr, a.flavor,
                           Value::makeInt(a.store_value));
        ++cycle;
        for (const auto& done : mem.tick(cycle))
            sim_loads[done.thread] = done.value.asInt();
        ref.submit(a);
    }
    // Drain any stragglers.
    for (int k = 0; k < 5; ++k) {
        ++cycle;
        for (const auto& done : mem.tick(cycle))
            sim_loads[done.thread] = done.value.asInt();
    }

    // Completed loads, final memory, presence bits, and the set of
    // still-parked references must all agree.
    EXPECT_EQ(sim_loads.size(), ref.loads.size());
    for (const auto& [id, v] : ref.loads) {
        ASSERT_TRUE(sim_loads.count(id)) << "load " << id;
        EXPECT_EQ(sim_loads[id], v) << "load " << id;
    }
    for (std::uint32_t a = 0; a < kWords; ++a) {
        EXPECT_EQ(mem.peek(a).asInt(), ref.words[a].value)
            << "word " << a;
        EXPECT_EQ(mem.isFull(a), ref.words[a].full) << "bit " << a;
    }
    EXPECT_EQ(mem.parkedCount(), ref.parkedCount());
}

} // namespace
} // namespace procoup
