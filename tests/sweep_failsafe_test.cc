/** @file Fail-safe sweep execution: a plan containing a guaranteed
 *  deadlock and a wall-clock-timeout point must run to completion
 *  under RunnerOptions::failSafe, report both failures as structured
 *  error records (bundle and sweep report switch to their /2
 *  schemas), and leave every healthy point's stats bit-identical to a
 *  clean sweep of the same points. */

#include <gtest/gtest.h>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/exp/harness.hh"
#include "procoup/exp/plan.hh"
#include "procoup/exp/runner.hh"
#include "procoup/fault/fault.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

/** take of a never-filled cell, with the value consumed: deadlock. */
constexpr const char* kDeadlockSource =
    "(defarray c (1) :int :empty)"
    "(defvar out 0)"
    "(defun main () (set out (take c 0)))";

/** A loop far too long to finish inside any test-sized deadline. */
constexpr const char* kEndlessSource =
    "(defvar out 0)"
    "(defun main ()"
    "  (for (i 0 1000000000) (set out (+ out 1))))";

config::MachineConfig
testMachine()
{
    auto m = config::baseline();
    m.deadlockCycleLimit = 300;
    return m;
}

exp::ExperimentPlan
hazardPlan()
{
    const auto machine = testMachine();
    exp::ExperimentPlan plan("failsafe");
    plan.addBenchmark(machine, benchmarks::byName("Matrix"),
                      core::SimMode::Coupled);
    plan.addSource("deadlock-point", machine, kDeadlockSource,
                   core::SimMode::Coupled);
    exp::SweepPoint& timeout = plan.addSource(
        "timeout-point", machine, kEndlessSource,
        core::SimMode::Coupled);
    timeout.simOptions.limits.wallClockDeadlineMs = 5.0;
    plan.addBenchmark(machine, benchmarks::byName("LUD"),
                      core::SimMode::Coupled);
    return plan;
}

TEST(SweepFailSafe, WithoutFailSafeTheSweepThrows)
{
    const auto plan = hazardPlan();
    exp::SweepRunner runner({.jobs = 1});
    EXPECT_THROW(runner.run(plan), SimError);
}

TEST(SweepFailSafe, HazardousPointsBecomeErrorRecords)
{
    const auto plan = hazardPlan();
    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.failSafe = true;
    exp::SweepRunner runner(ropts);
    const exp::SweepResult result = runner.run(plan);

    ASSERT_EQ(result.outcomes.size(), 4u);
    EXPECT_EQ(result.failedCount(), 2u);

    const exp::RunOutcome& dead = result.at("deadlock-point");
    EXPECT_TRUE(dead.failed);
    EXPECT_EQ(dead.errorKind, SimErrorKind::Deadlock);
    EXPECT_GT(dead.errorCycle, 0u);
    EXPECT_NE(dead.error.find("deadlock at cycle"), std::string::npos)
        << dead.error;
    EXPECT_NE(dead.error.find("waiting:"), std::string::npos)
        << dead.error;

    const exp::RunOutcome& slow = result.at("timeout-point");
    EXPECT_TRUE(slow.failed);
    EXPECT_EQ(slow.errorKind, SimErrorKind::WallClockDeadline);
    EXPECT_NE(slow.error.find("wall-clock deadline"),
              std::string::npos)
        << slow.error;

    // The healthy points are untouched by their neighbors' failures:
    // bit-identical to a sweep that never contained the hazards.
    exp::ExperimentPlan clean("clean");
    clean.addBenchmark(testMachine(), benchmarks::byName("Matrix"),
                       core::SimMode::Coupled);
    clean.addBenchmark(testMachine(), benchmarks::byName("LUD"),
                       core::SimMode::Coupled);
    exp::SweepRunner clean_runner({.jobs = 1});
    const exp::SweepResult ref = clean_runner.run(clean);
    for (const auto& o : ref.outcomes) {
        const exp::RunOutcome& got = result.at(o.point->label);
        EXPECT_FALSE(got.failed);
        EXPECT_TRUE(got.result.stats == o.result.stats)
            << o.point->label;
        EXPECT_TRUE(got.result.memory == o.result.memory)
            << o.point->label;
    }
}

TEST(SweepFailSafe, BundleAndReportCarryErrorRecords)
{
    const auto plan = hazardPlan();
    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.failSafe = true;
    exp::SweepRunner runner(ropts);
    const exp::SweepResult result = runner.run(plan);

    const std::string bundle = exp::formatStatsBundle(result);
    EXPECT_NE(bundle.find("procoup-stats-bundle/2"),
              std::string::npos);
    EXPECT_NE(bundle.find("\"kind\": \"deadlock\""),
              std::string::npos);
    EXPECT_NE(bundle.find("\"kind\": \"wall-clock-deadline\""),
              std::string::npos);

    exp::HarnessOptions hopts;
    const std::string report =
        exp::formatSweepReport(plan, result, hopts);
    EXPECT_NE(report.find("procoup-sweep/2"), std::string::npos);
    EXPECT_NE(report.find("\"failed_points\": 2"), std::string::npos);
    EXPECT_NE(report.find("\"label\": \"deadlock-point\""),
              std::string::npos);
}

TEST(SweepFailSafe, RetryRecordsFirstDeterministicError)
{
    // A deadlock independent of the fault schedule fails every
    // reseeded retry too; the recorded error must be the *first* one,
    // with the whole bounded retry budget counted in the record.
    const auto machine = testMachine();
    exp::ExperimentPlan plan("retry");
    exp::SweepPoint& p = plan.addSource("faulted-deadlock", machine,
                                        kDeadlockSource,
                                        core::SimMode::Coupled);
    p.simOptions.faults = fault::FaultPlan::atIntensity(1.0, 3);

    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.failSafe = true;
    ropts.retryFaulted = true;
    ropts.retryPolicy.maxAttempts = 3;   // 2 retries after the first
    ropts.retryPolicy.baseDelayMs = 1.0; // keep the test fast
    exp::SweepRunner runner(ropts);
    const exp::SweepResult result = runner.run(plan);

    const exp::RunOutcome& o = result.at("faulted-deadlock");
    EXPECT_TRUE(o.failed);
    EXPECT_EQ(o.retries, ropts.retryPolicy.maxRetries());
    EXPECT_EQ(o.errorKind, SimErrorKind::Deadlock);

    // Unfaulted points are never retried: their failures replay
    // identically by construction.
    exp::ExperimentPlan plain("plain");
    plain.addSource("bare-deadlock", machine, kDeadlockSource,
                    core::SimMode::Coupled);
    const exp::SweepResult result2 = runner.run(plain);
    EXPECT_EQ(result2.at("bare-deadlock").retries, 0);
    EXPECT_TRUE(result2.at("bare-deadlock").failed);
}

} // namespace
} // namespace procoup
