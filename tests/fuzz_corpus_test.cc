/**
 * @file
 * Regression corpus replay (tier-1).
 *
 * Every file in tests/corpus/ is replayed through the full
 * differential battery (gen::checkProgram — all machines, all modes,
 * clean and faulted):
 *
 *   pass-*.pcl   must come back clean. These are pinned generator
 *                outputs; a failure means either a simulator/compiler
 *                regression or a generator change that invalidated a
 *                pinned source (regenerate the file deliberately).
 *   xfail-*.pcl  must be *detected* — either the battery reports a
 *                mismatch or compilation raises CompileError. These
 *                are minimized witnesses of past bugs and of
 *                guarantees the frontend makes (duplicate globals,
 *                nesting bombs, constant out-of-range indices, array
 *                size overflow). If one stops being detected, a guard
 *                has regressed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "procoup/gen/soak.hh"
#include "procoup/support/error.hh"

using namespace procoup;
namespace fs = std::filesystem;

namespace {

const fs::path kCorpusDir =
    fs::path(PROCOUP_SOURCE_DIR) / "tests" / "corpus";

std::vector<fs::path>
corpusFiles(const std::string& prefix)
{
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(kCorpusDir))
        if (e.path().extension() == ".pcl" &&
            e.path().filename().string().rfind(prefix, 0) == 0)
            out.push_back(e.path());
    std::sort(out.begin(), out.end());
    return out;
}

std::string
slurp(const fs::path& p)
{
    std::ifstream f(p);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

} // namespace

TEST(FuzzCorpus, PassEntriesStayClean)
{
    const auto files = corpusFiles("pass-");
    ASSERT_GE(files.size(), 3u) << "corpus went missing: "
                                << kCorpusDir;
    gen::SoakOptions opts;
    for (const auto& p : files)
        EXPECT_EQ(gen::checkProgram(slurp(p), opts), "")
            << p.filename();
}

TEST(FuzzCorpus, XfailEntriesStayDetected)
{
    const auto files = corpusFiles("xfail-");
    ASSERT_GE(files.size(), 5u) << "corpus went missing: "
                                << kCorpusDir;
    gen::SoakOptions opts;
    for (const auto& p : files) {
        bool detected = false;
        std::string how;
        try {
            how = gen::checkProgram(slurp(p), opts);
            detected = !how.empty();
        } catch (const CompileError& e) {
            detected = true;
            how = std::string("CompileError: ") + e.what();
        }
        EXPECT_TRUE(detected)
            << p.filename() << " is no longer detected";
        SCOPED_TRACE(how);
    }
}
