/** @file Golden-trace regression: a small deterministic kernel is run
 *  with full tracing (stall events included) on a small machine, and
 *  the exact event sequence — in TraceEvent::toString()'s stable
 *  textual format — is diffed against a checked-in golden file.
 *
 *  The simulator is deterministic, so any diff is a real behavioural
 *  or observability change. If it is intentional, regenerate with
 *
 *      PROCOUP_UPDATE_GOLDEN=1 ./golden_trace_test
 *
 *  and review the diff like any other golden update. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "procoup/config/parse.hh"
#include "procoup/core/node.hh"
#include "procoup/sim/simulator.hh"
#include "procoup/support/strings.hh"

namespace procoup {
namespace {

const char* const kGoldenPath =
    PROCOUP_SOURCE_DIR "/tests/golden/small_kernel_trace.txt";

/** Scaled-down dot product with a parallel fill: exercises forall
 *  FORK fan-out, synchronizing memory references, ALU pipelines, and
 *  thread retirement — every trace event kind. */
const char* const kKernel = R"((defarray a (6) :init-each (* 1.0 i))
(defarray b (6) :init-each (- 2.0 (* 0.5 i)))
(defvar acc 0.0)
(defun main ()
  (forall (i 0 6)
    (aset a i (* (aref a i) 2.0)))
  (let ((s 0.0))
    (for (i 0 6)
      (set s (+ s (* (aref a i) (aref b i)))))
    (set acc s)))
)";

/** One arithmetic cluster + one branch cluster: small enough that the
 *  golden file stays reviewable, busy enough to stall. */
const char* const kMachine =
    "(machine golden (cluster (iu) (fpu) (mem)) (cluster (br)))";

std::vector<std::string>
traceKernel()
{
    const auto machine = config::parseMachine(kMachine);
    core::CoupledNode node(machine);
    const auto compiled =
        node.compile(kKernel, core::SimMode::Coupled);

    sim::Simulator simulator(machine, compiled.program);
    std::vector<std::string> lines;
    simulator.setTracer([&](const sim::TraceEvent& e) {
        lines.push_back(e.toString());
    });
    simulator.setTraceStalls(true);
    simulator.run();
    return lines;
}

TEST(GoldenTrace, SmallKernelEventSequenceIsStable)
{
    const std::vector<std::string> lines = traceKernel();
    ASSERT_FALSE(lines.empty());

    if (std::getenv("PROCOUP_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath);
        ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
        for (const auto& l : lines)
            out << l << "\n";
        GTEST_SKIP() << "golden file regenerated: " << kGoldenPath;
    }

    std::ifstream in(kGoldenPath);
    ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                    << " — regenerate with PROCOUP_UPDATE_GOLDEN=1";
    std::vector<std::string> golden;
    for (std::string line; std::getline(in, line);)
        golden.push_back(line);

    for (std::size_t i = 0; i < golden.size() && i < lines.size();
         ++i)
        ASSERT_EQ(golden[i], lines[i]) << "first diff at event " << i;
    EXPECT_EQ(golden.size(), lines.size());
}

TEST(GoldenTrace, TraceCoversTheStallTaxonomy)
{
    const std::vector<std::string> lines = traceKernel();
    auto contains = [&](const std::string& needle) {
        for (const auto& l : lines)
            if (l.find(needle) != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(contains(" issue "));
    EXPECT_TRUE(contains(" wb "));
    EXPECT_TRUE(contains(" spawn "));
    EXPECT_TRUE(contains(" retire "));
    EXPECT_TRUE(contains(" stall "));
    EXPECT_TRUE(contains("no-ready-op"));
}

TEST(GoldenTrace, ChromeExportIsWellFormedJson)
{
    const auto machine = config::parseMachine(kMachine);
    core::CoupledNode node(machine);
    const auto compiled =
        node.compile(kKernel, core::SimMode::Coupled);
    sim::Simulator simulator(machine, compiled.program);
    std::vector<sim::TraceEvent> events;
    simulator.setTracer(
        [&](const sim::TraceEvent& e) { events.push_back(e); });
    simulator.setTraceStalls(true);
    simulator.run();

    const std::string json = sim::chromeTraceJson(events);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    // Structural spot checks (full validation lives in the Python
    // schema checker): balanced braces and one record per event.
    std::size_t open = 0;
    std::size_t close = 0;
    for (char c : json) {
        open += c == '{';
        close += c == '}';
    }
    EXPECT_EQ(open, close);
    // One record object plus one args object per event, plus the
    // envelope.
    EXPECT_EQ(open, 2 * events.size() + 1);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"stall\""), std::string::npos);
}

} // namespace
} // namespace procoup
