/** @file Unit tests for the PCL lexer and parser. */

#include <gtest/gtest.h>

#include "procoup/lang/lexer.hh"
#include "procoup/lang/parser.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

using lang::Sexpr;
using lang::Token;

TEST(Lexer, BasicTokens)
{
    const auto toks = lang::tokenize("(foo 12 -3 4.5 :bar)");
    ASSERT_EQ(toks.size(), 8u);  // ( foo 12 -3 4.5 :bar ) END
    EXPECT_EQ(toks[0].kind, Token::Kind::LParen);
    EXPECT_EQ(toks[1].kind, Token::Kind::Symbol);
    EXPECT_EQ(toks[1].text, "foo");
    EXPECT_EQ(toks[2].kind, Token::Kind::Int);
    EXPECT_EQ(toks[2].ival, 12);
    EXPECT_EQ(toks[3].kind, Token::Kind::Int);
    EXPECT_EQ(toks[3].ival, -3);
    EXPECT_EQ(toks[4].kind, Token::Kind::Float);
    EXPECT_DOUBLE_EQ(toks[4].fval, 4.5);
    EXPECT_EQ(toks[5].text, ":bar");
    EXPECT_EQ(toks[6].kind, Token::Kind::RParen);
}

TEST(Lexer, CommentsAndWhitespace)
{
    const auto toks = lang::tokenize("; a comment\n  ( a ; mid\n b )");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[1].text, "a");
    EXPECT_EQ(toks[2].text, "b");
}

TEST(Lexer, ScientificNotation)
{
    const auto toks = lang::tokenize("1.5e3 2e-2");
    EXPECT_DOUBLE_EQ(toks[0].fval, 1500.0);
    EXPECT_DOUBLE_EQ(toks[1].fval, 0.02);
}

TEST(Lexer, OperatorSymbols)
{
    const auto toks = lang::tokenize("(+ - * / < <= != a-b_c)");
    EXPECT_EQ(toks[1].text, "+");
    EXPECT_EQ(toks[2].text, "-");
    EXPECT_EQ(toks[6].text, "<=");
    EXPECT_EQ(toks[7].text, "!=");
    EXPECT_EQ(toks[8].text, "a-b_c");
}

TEST(Lexer, MinusBeforeDigitIsNumber)
{
    const auto toks = lang::tokenize("(- 5 -5)");
    EXPECT_EQ(toks[1].text, "-");
    EXPECT_EQ(toks[1].kind, Token::Kind::Symbol);
    EXPECT_EQ(toks[3].ival, -5);
}

TEST(Lexer, TracksLineNumbers)
{
    const auto toks = lang::tokenize("(a\n  b)");
    EXPECT_EQ(toks[1].loc.line, 1);
    EXPECT_EQ(toks[2].loc.line, 2);
    EXPECT_EQ(toks[2].loc.column, 3);
}

TEST(Lexer, RejectsBadCharacters)
{
    EXPECT_THROW(lang::tokenize("(a #b)"), CompileError);
}

TEST(Parser, NestedLists)
{
    const auto forms = lang::parse("(a (b 1) (c (d 2.5)))");
    ASSERT_EQ(forms.size(), 1u);
    const Sexpr& f = forms[0];
    ASSERT_TRUE(f.isList());
    EXPECT_EQ(f.size(), 3u);
    EXPECT_TRUE(f.at(0).isSymbol("a"));
    EXPECT_TRUE(f.at(1).isCall("b"));
    EXPECT_EQ(f.at(1).at(1).intValue(), 1);
    EXPECT_DOUBLE_EQ(f.at(2).at(1).at(1).floatValue(), 2.5);
}

TEST(Parser, MultipleTopLevelForms)
{
    const auto forms = lang::parse("(a) (b) 3");
    ASSERT_EQ(forms.size(), 3u);
    EXPECT_TRUE(forms[2].isInt());
}

TEST(Parser, RoundTripsThroughToString)
{
    const std::string src = "(defun f (x) (+ x 1))";
    const auto forms = lang::parse(src);
    EXPECT_EQ(forms[0].toString(), src);
}

TEST(Parser, UnbalancedParensThrow)
{
    EXPECT_THROW(lang::parse("(a (b)"), CompileError);
    EXPECT_THROW(lang::parse("(a))"), CompileError);
}

TEST(Parser, AtBoundsChecksListAccess)
{
    const auto forms = lang::parse("(a b)");
    EXPECT_NO_THROW(forms[0].at(1));
    EXPECT_THROW(forms[0].at(2), CompileError);
}

} // namespace
} // namespace procoup
