/** @file Unit tests for the small simulator building blocks:
 *  RegisterSet presence bits and the ThreadContext issue window. */

#include <gtest/gtest.h>

#include "procoup/isa/builder.hh"
#include "procoup/sim/regfile.hh"
#include "procoup/sim/thread.hh"
#include "test_util.hh"

namespace procoup {
namespace {

using namespace isa;
using sim::RegisterSet;
using sim::ThreadContext;
using sim::ThreadState;
using testutil::rr;

TEST(RegisterSet, StartsValidWithZero)
{
    RegisterSet r({2, 3});
    EXPECT_EQ(r.numClusters(), 2);
    EXPECT_EQ(r.frameSize(0), 2u);
    EXPECT_EQ(r.frameSize(1), 3u);
    EXPECT_TRUE(r.isValid(rr(1, 2)));
    EXPECT_EQ(r.read(rr(1, 2)).asInt(), 0);
}

TEST(RegisterSet, IssueClearThenWriteSets)
{
    RegisterSet r({2});
    r.clearValid(rr(0, 1));
    EXPECT_FALSE(r.isValid(rr(0, 1)));
    // The stale value stays readable while invalid (read-at-issue of
    // same-row WAR pairs depends on this).
    EXPECT_EQ(r.read(rr(0, 1)).asInt(), 0);
    r.write(rr(0, 1), Value::makeFloat(2.5));
    EXPECT_TRUE(r.isValid(rr(0, 1)));
    EXPECT_DOUBLE_EQ(r.read(rr(0, 1)).rawFloat(), 2.5);
}

/** Build a two-row code fragment for window tests. */
ThreadCode
twoRowCode()
{
    ProgramBuilder pb(6);
    auto t = pb.thread("t", {4});
    t.row();
    t.add(0, op::alu(Opcode::IADD, rr(0, 0), op::imm(1), op::imm(2)));
    t.add(1, op::alu(Opcode::FADD, rr(0, 1), op::fimm(1), op::fimm(2)));
    t.rowOp(12, op::ethr());
    return pb.finish(0).threads[0];
}

TEST(ThreadContext, WindowTracksSlotIssue)
{
    const auto code = twoRowCode();
    ThreadContext t(0, &code, 0, 0);
    EXPECT_EQ(t.state(), ThreadState::Active);
    EXPECT_EQ(t.ip(), 0u);
    EXPECT_FALSE(t.allSlotsIssued());

    t.markIssued(0);
    EXPECT_TRUE(t.slotIssued(0));
    EXPECT_FALSE(t.slotIssued(1));
    EXPECT_FALSE(t.allSlotsIssued());
    // Partially issued: the IP must not advance.
    EXPECT_FALSE(t.endOfCycle(3));
    EXPECT_EQ(t.ip(), 0u);

    t.markIssued(1);
    EXPECT_TRUE(t.allSlotsIssued());
    EXPECT_FALSE(t.endOfCycle(4));  // advanced, not retired
    EXPECT_EQ(t.ip(), 1u);
    EXPECT_FALSE(t.allSlotsIssued());  // fresh window for row 1
}

TEST(ThreadContext, BranchHoldsAdvanceUntilResolved)
{
    ProgramBuilder pb(6);
    auto t = pb.thread("t", {1, 0, 0, 0, 2});
    t.rowOp(12, op::bt(op::reg(rr(4, 0)), 0));
    t.rowOp(12, op::ethr());
    const auto code = pb.finish(0).threads[0];

    ThreadContext ctx(0, &code, 0, 0);
    // Branch issues at cycle 2, resolves at end of cycle 4 (latency 3).
    ctx.markIssued(0);
    ctx.setBranch(/*taken=*/false, 0, /*resolve=*/4);
    EXPECT_FALSE(ctx.endOfCycle(2));
    EXPECT_EQ(ctx.ip(), 0u);  // still waiting for resolution
    EXPECT_FALSE(ctx.endOfCycle(3));
    EXPECT_EQ(ctx.ip(), 0u);
    EXPECT_FALSE(ctx.endOfCycle(4));
    EXPECT_EQ(ctx.ip(), 1u);  // fell through after resolution
}

TEST(ThreadContext, TakenBranchRedirects)
{
    ProgramBuilder pb(6);
    auto t = pb.thread("t", {1, 0, 0, 0, 2});
    t.rowOp(12, op::br(2));
    t.rowOp(12, op::ethr());
    t.rowOp(12, op::ethr());
    const auto code = pb.finish(0).threads[0];

    ThreadContext ctx(0, &code, 0, 0);
    ctx.markIssued(0);
    ctx.setBranch(true, 2, 0);
    EXPECT_FALSE(ctx.endOfCycle(0));
    EXPECT_EQ(ctx.ip(), 2u);
}

TEST(ThreadContext, EndRetiresAtResolveCycle)
{
    const auto code = twoRowCode();
    ThreadContext t(7, &code, 0, 5);
    EXPECT_EQ(t.spawnCycle(), 5u);
    t.markIssued(0);
    t.markIssued(1);
    t.endOfCycle(6);           // advance to the ETHR row
    t.markIssued(0);
    t.setEnd(/*resolve=*/8);
    EXPECT_FALSE(t.endOfCycle(7));
    EXPECT_EQ(t.state(), ThreadState::Active);
    EXPECT_TRUE(t.endOfCycle(8));
    EXPECT_EQ(t.state(), ThreadState::Done);
    EXPECT_EQ(t.endCycle(), 8u);
}

TEST(ThreadContext, RunningOffTheEndRetires)
{
    ProgramBuilder pb(6);
    auto t = pb.thread("t", {1});
    t.rowOp(0, op::mov(rr(0, 0), op::imm(1)));
    const auto code = pb.finish(0).threads[0];

    ThreadContext ctx(0, &code, 0, 0);
    ctx.markIssued(0);
    EXPECT_TRUE(ctx.endOfCycle(1));
    EXPECT_EQ(ctx.state(), ThreadState::Done);
}

TEST(ThreadContext, EmptyCodeIsImmediatelyDone)
{
    ProgramBuilder pb(6);
    pb.thread("empty", {1});
    const auto code = pb.finish(0).threads[0];
    ThreadContext ctx(0, &code, 0, 9);
    EXPECT_EQ(ctx.state(), ThreadState::Done);
    EXPECT_EQ(ctx.endCycle(), 9u);
}

} // namespace
} // namespace procoup
