/** @file Language acceptance tests: corner cases of scoping,
 *  expansion, threading, and typing, verified end to end. */

#include <gtest/gtest.h>

#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

using core::CoupledNode;
using core::SimMode;

core::RunResult
run(const std::string& src, SimMode mode = SimMode::Coupled)
{
    CoupledNode node(config::baseline());
    return node.runSource(src, mode);
}

TEST(LanguageCorners, LetShadowing)
{
    const auto r = run(
        "(defvar out 0)"
        "(defun main ()"
        "  (let ((x 1))"
        "    (let ((x 10))"
        "      (set x (+ x 5)))"       // inner x
        "    (set out x)))");           // outer x untouched
    EXPECT_EQ(r.intValue("out"), 1);
}

TEST(LanguageCorners, DefunCallingDefun)
{
    const auto r = run(
        "(defvar out 0)"
        "(defun twice (x) (* 2 x))"
        "(defun quad (x) (twice (twice x)))"
        "(defun main () (set out (quad 5)))");
    EXPECT_EQ(r.intValue("out"), 20);
}

TEST(LanguageCorners, DefunParamsAreCopies)
{
    // set on a parameter must not affect the caller's variable.
    const auto r = run(
        "(defvar out 0)"
        "(defun clobber (x) (set x 99) x)"
        "(defun main ()"
        "  (let ((a 5))"
        "    (clobber a)"
        "    (set out a)))");
    EXPECT_EQ(r.intValue("out"), 5);
}

TEST(LanguageCorners, DefunCannotSeeCallerLocals)
{
    EXPECT_THROW(run(
        "(defun leak () hidden)"
        "(defun main () (let ((hidden 5)) (leak)))"),
        CompileError);
}

TEST(LanguageCorners, ForallInsideDefunCalledFromMain)
{
    const auto r = run(
        "(defarray a (8))"
        "(defun fill () (forall (i 0 8) (aset a i (float i))))"
        "(defvar sum 0.0)"
        "(defun main ()"
        "  (fill)"
        "  (let ((s 0.0))"
        "    (for (i 0 8) (set s (+ s (aref a i))))"
        "    (set sum s)))");
    EXPECT_DOUBLE_EQ(r.value("sum"), 28.0);
}

TEST(LanguageCorners, UnrollInsideForallBody)
{
    const auto r = run(
        "(defarray a (4 4))"
        "(defun main ()"
        "  (forall (r 0 4)"
        "    (for (c 0 4 :unroll)"
        "      (aset a r c (float (+ (* 10 r) c))))))");
    for (int rr = 0; rr < 4; ++rr)
        for (int c = 0; c < 4; ++c)
            EXPECT_DOUBLE_EQ(r.value("a", 4 * rr + c), 10.0 * rr + c);
}

TEST(LanguageCorners, BeginYieldsLastValue)
{
    const auto r = run(
        "(defvar out 0)"
        "(defun main ()"
        "  (set out (begin 1 2 (+ 3 4))))");
    EXPECT_EQ(r.intValue("out"), 7);
}

TEST(LanguageCorners, NestedWhileLoops)
{
    const auto r = run(
        "(defvar out 0)"
        "(defun main ()"
        "  (let ((i 0) (total 0))"
        "    (while (< i 5)"
        "      (let ((j 0))"
        "        (while (< j i)"
        "          (set total (+ total 1))"
        "          (set j (+ j 1))))"
        "      (set i (+ i 1)))"
        "    (set out total)))");
    EXPECT_EQ(r.intValue("out"), 10);  // 0+1+2+3+4
}

TEST(LanguageCorners, AndOrNotSemantics)
{
    const auto r = run(
        "(defvar a 0)(defvar b 0)(defvar c 0)"
        "(defun main ()"
        "  (let ((x 3) (y 0))"
        "    (set a (and (< y x) (!= x 0)))"
        "    (set b (or (= x 0) (= y 0)))"
        "    (set c (not (and 1 0)))))");
    EXPECT_EQ(r.intValue("a"), 1);
    EXPECT_EQ(r.intValue("b"), 1);
    EXPECT_EQ(r.intValue("c"), 1);
}

TEST(LanguageCorners, NegativeNumbersAndUnaryMinus)
{
    const auto r = run(
        "(defvar i 0)(defvar f 0.0)"
        "(defun main ()"
        "  (let ((x 7) (y 2.5))"
        "    (set i (- x))"
        "    (set f (+ -1.5 (- y)))))");
    EXPECT_EQ(r.intValue("i"), -7);
    EXPECT_DOUBLE_EQ(r.value("f"), -4.0);
}

TEST(LanguageCorners, IntFloatCasts)
{
    const auto r = run(
        "(defvar i 0)(defvar f 0.0)"
        "(defun main ()"
        "  (let ((x 2.9))"
        "    (set i (int x))"
        "    (set f (/ (float 7) 2.0))))");
    EXPECT_EQ(r.intValue("i"), 2);
    EXPECT_DOUBLE_EQ(r.value("f"), 3.5);
}

TEST(LanguageCorners, GlobalScalarsReadAndWrite)
{
    const auto r = run(
        "(defvar counter 10)"
        "(defvar out 0)"
        "(defun main ()"
        "  (set counter (+ counter 5))"
        "  (set out (* counter 2)))");
    EXPECT_EQ(r.intValue("counter"), 15);
    EXPECT_EQ(r.intValue("out"), 30);
}

TEST(LanguageCorners, WhileConditionMustBeInt)
{
    EXPECT_THROW(run(
        "(defun main () (while 1.5 0))"), CompileError);
}

TEST(LanguageCorners, SetOnUnrolledVariableRejected)
{
    EXPECT_THROW(run(
        "(defun main () (for (i 0 3 :unroll) (set i 9)))"),
        CompileError);
}

TEST(LanguageCorners, ArrayDimensionMismatchRejected)
{
    EXPECT_THROW(run(
        "(defarray a (4 4))"
        "(defun main () (aref a 1))"), CompileError);
    EXPECT_THROW(run(
        "(defarray a (4))"
        "(defun main () (aset a 1 2 3.0))"), CompileError);
}

TEST(LanguageCorners, ForkRequiresCallForm)
{
    EXPECT_THROW(run("(defun main () (fork 5))"), CompileError);
    EXPECT_THROW(run(
        "(defun w (a b c d) 0)"
        "(defun main () (fork (w 1 2 3 4)))"), CompileError);
}

TEST(LanguageCorners, InconsistentForkArgTypesRejected)
{
    EXPECT_THROW(run(
        "(defarray a (4))"
        "(defun w (x) (aset a 0 (float x)))"
        "(defun main ()"
        "  (fork (w 1))"
        "  (fork (w 2.5)))"), CompileError);
}

TEST(LanguageCorners, EmptyForallBodyStillJoins)
{
    // Zero-trip forall: no children, no join wait, no deadlock.
    const auto r = run(
        "(defvar out 0)"
        "(defarray a (4))"
        "(defun main ()"
        "  (let ((n 0))"
        "    (forall (i 0 n) (aset a i 1.0)))"
        "  (set out 1))");
    EXPECT_EQ(r.intValue("out"), 1);
}

TEST(LanguageCorners, ForallSingleIteration)
{
    const auto r = run(
        "(defarray a (1))"
        "(defun main () (forall (i 0 1) (aset a i 9.0)))");
    EXPECT_DOUBLE_EQ(r.value("a", 0), 9.0);
}

} // namespace
} // namespace procoup
