/** @file Unit tests for the support module (RNG, strings, tables,
 *  inline vectors). */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "procoup/support/error.hh"
#include "procoup/support/inline_vector.hh"
#include "procoup/support/rng.hh"
#include "procoup/support/strings.hh"
#include "procoup/support/table.hh"

namespace procoup {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, ZeroSeedIsRemapped)
{
    Rng a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng r(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniformInt(20, 100);
        ASSERT_GE(v, 20);
        ASSERT_LE(v, 100);
        seen.insert(v);
    }
    // The paper's miss-penalty range should be well covered.
    EXPECT_GT(seen.size(), 70u);
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng r(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniformInt(5, 5), 5);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (r.chance(0.05))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.05, 0.01);
}

TEST(Strings, StrCat)
{
    EXPECT_EQ(strCat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(strCat(), "");
}

TEST(Strings, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y\t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Fixed)
{
    EXPECT_EQ(fixed(1.2345, 2), "1.23");
    EXPECT_EQ(fixed(2.0, 1), "2.0");
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.header({"Benchmark", "Cycles"});
    t.row({"Matrix", "638"});
    t.row({"FFT", "1102"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Benchmark"), std::string::npos);
    EXPECT_NE(out.find("Matrix"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(InlineVec, StaysInlineUpToCapacity)
{
    support::InlineVec<int, 4> v;
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 4; ++i)
        v.push_back(i * 10);
    EXPECT_FALSE(v.onHeap());
    EXPECT_EQ(v.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(v[i], i * 10);
    EXPECT_EQ(v.front(), 0);
    EXPECT_EQ(v.back(), 30);
}

TEST(InlineVec, SpillsToHeapAndKeepsContents)
{
    support::InlineVec<std::string, 2> v;
    for (int i = 0; i < 40; ++i)
        v.push_back(strCat("elem-", i));
    EXPECT_TRUE(v.onHeap());
    EXPECT_EQ(v.size(), 40u);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(v[i], strCat("elem-", i));
}

TEST(InlineVec, CopyAndEquality)
{
    support::InlineVec<int, 2> a{1, 2, 3};  // spilled
    support::InlineVec<int, 2> b = a;
    EXPECT_EQ(a, b);
    b.push_back(4);
    EXPECT_FALSE(a == b);
    a = b;
    EXPECT_EQ(a.size(), 4u);
    EXPECT_EQ(a[3], 4);
}

TEST(InlineVec, MoveStealsHeapAndMovesInline)
{
    support::InlineVec<std::unique_ptr<int>, 2> inl;
    inl.push_back(std::make_unique<int>(7));
    auto moved_inl = std::move(inl);
    ASSERT_EQ(moved_inl.size(), 1u);
    EXPECT_EQ(*moved_inl[0], 7);
    EXPECT_TRUE(inl.empty());

    support::InlineVec<std::unique_ptr<int>, 2> big;
    for (int i = 0; i < 8; ++i)
        big.push_back(std::make_unique<int>(i));
    const int* stable = big[5].get();
    auto moved_big = std::move(big);
    EXPECT_TRUE(moved_big.onHeap());
    EXPECT_EQ(moved_big[5].get(), stable);  // pointer stolen, not copied
    EXPECT_TRUE(big.empty());

    // Move-assign over live contents releases them.
    moved_inl = std::move(moved_big);
    ASSERT_EQ(moved_inl.size(), 8u);
    EXPECT_EQ(*moved_inl[3], 3);
}

TEST(InlineVec, ClearReusesStorageAndIteratesInOrder)
{
    support::InlineVec<int, 4> v{5, 6, 7};
    int sum = 0;
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 18);
    v.clear();
    EXPECT_TRUE(v.empty());
    v.push_back(9);
    EXPECT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 9);
    v.pop_back();
    EXPECT_TRUE(v.empty());
}

TEST(InlineVec, IteratorRangeConstructor)
{
    const std::vector<int> src = {3, 1, 4, 1, 5};
    support::InlineVec<int, 2> v(src.begin(), src.end());
    ASSERT_EQ(v.size(), 5u);
    EXPECT_EQ(v[4], 5);
}

TEST(Errors, CompileAndSimErrorsCarryMessages)
{
    try {
        throw CompileError("bad source");
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "bad source");
    }
    try {
        throw SimError("deadlock");
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "deadlock");
    }
}

} // namespace
} // namespace procoup
