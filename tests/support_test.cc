/** @file Unit tests for the support module (RNG, strings, tables). */

#include <gtest/gtest.h>

#include <set>

#include "procoup/support/error.hh"
#include "procoup/support/rng.hh"
#include "procoup/support/strings.hh"
#include "procoup/support/table.hh"

namespace procoup {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, ZeroSeedIsRemapped)
{
    Rng a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng r(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniformInt(20, 100);
        ASSERT_GE(v, 20);
        ASSERT_LE(v, 100);
        seen.insert(v);
    }
    // The paper's miss-penalty range should be well covered.
    EXPECT_GT(seen.size(), 70u);
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng r(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniformInt(5, 5), 5);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (r.chance(0.05))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.05, 0.01);
}

TEST(Strings, StrCat)
{
    EXPECT_EQ(strCat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(strCat(), "");
}

TEST(Strings, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y\t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Fixed)
{
    EXPECT_EQ(fixed(1.2345, 2), "1.23");
    EXPECT_EQ(fixed(2.0, 1), "2.0");
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.header({"Benchmark", "Cycles"});
    t.row({"Matrix", "638"});
    t.row({"FFT", "1102"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Benchmark"), std::string::npos);
    EXPECT_NE(out.find("Matrix"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Errors, CompileAndSimErrorsCarryMessages)
{
    try {
        throw CompileError("bad source");
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "bad source");
    }
    try {
        throw SimError("deadlock");
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "deadlock");
    }
}

} // namespace
} // namespace procoup
