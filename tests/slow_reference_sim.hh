#ifndef PROCOUP_TESTS_SLOW_REFERENCE_SIM_HH
#define PROCOUP_TESTS_SLOW_REFERENCE_SIM_HH

/**
 * @file
 * SlowReferenceSimulator — the simulator's original, unoptimized cycle
 * loop, retained verbatim as an executable specification.
 *
 * This is the pre-hot-path-overhaul sim::Simulator: every function unit
 * rescans every slot of every active thread's row, the writeback queue
 * is re-sorted with std::stable_sort each cycle, pipeline completions
 * are found by a linear erase-scan, every quiescent cycle is stepped
 * individually, and issue/writeback allocate freely. It is O(big) and
 * proud of it: the point is that its per-cycle semantics are trivially
 * auditable against docs/INTERNALS.md.
 *
 * tests/sim_hotpath_property_test.cc runs randomized programs on
 * randomized machine configurations through both simulators and
 * requires bit-identical RunStats (including the stall-attribution
 * buckets and the conservation identity) and identical memory images.
 * Any divergence is a bug in the optimized hot path — this file should
 * only ever change when the *semantics* of the simulator change, in
 * which case the golden-cycle tests move too.
 *
 * Deliberately header-only and test-only: the production library never
 * links it.
 */

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "procoup/config/machine.hh"
#include "procoup/config/validate.hh"
#include "procoup/fault/fault.hh"
#include "procoup/isa/program.hh"
#include "procoup/sim/alu.hh"
#include "procoup/sim/interconnect.hh"
#include "procoup/sim/memory.hh"
#include "procoup/sim/opcache.hh"
#include "procoup/sim/stats.hh"
#include "procoup/sim/thread.hh"
#include "procoup/support/error.hh"
#include "procoup/support/strings.hh"

namespace procoup {
namespace simtest {

/** The original O(FUs × threads × slots) simulator, kept as a spec. */
class SlowReferenceSimulator
{
  public:
    SlowReferenceSimulator(const config::MachineConfig& machine,
                           const isa::Program& program,
                           const sim::SimOptions& options = {})
        : machine(machine), program(program), opts(options),
          network(machine.interconnect,
                  static_cast<int>(machine.clusters.size())),
          opCaches(machine.opCache, machine.numFus())
    {
        config::validateProgram(this->program, machine);

        // Fault injection mirrors the optimized simulator exactly:
        // one injector, draws at the same events in the same order
        // (memory schedule, issued ALU op, FORK) — the differential
        // test requires bit-identical faulted RunStats too. Budgets
        // and the sanitizer are not mirrored here; the reference sim
        // exists to specify the cycle semantics, not the harness.
        if (opts.faults.enabled)
            faults =
                std::make_unique<fault::FaultInjector>(opts.faults);

        for (int fu = 0; fu < machine.numFus(); ++fu) {
            FuState f;
            f.cluster = machine.fuCluster(fu);
            f.type = machine.fuConfig(fu).type;
            f.latency = machine.fuConfig(fu).latency;
            fus.push_back(f);
        }
        _stats.opsByFu.assign(fus.size(), 0);
        _stats.stallsByFu.assign(fus.size(), sim::StallCounts{});
        _stats.stallsByCluster.assign(machine.clusters.size(),
                                      sim::StallCounts{});
        rrLastThread.assign(fus.size(), -1);

        mem = std::make_unique<sim::MemorySystem>(machine.memory,
                                                  program.memorySize,
                                                  program.memInits);
        mem->setFaultInjector(faults.get());

        spawnThread(program.entry, {});
    }

    sim::RunStats run()
    {
        while (step()) {
        }
        return stats();
    }

    bool step()
    {
        if (finished())
            return false;

        progressThisCycle = false;
        network.beginCycle();

        // 1. Memory arrivals: completed loads join the writeback queue.
        for (auto& cl : mem->tick(_cycle)) {
            for (const auto& dst : cl.dsts) {
                WbEntry e;
                e.thread = cl.thread;
                e.dst = dst;
                e.value = cl.value;
                e.srcCluster = cl.srcCluster;
                e.seq = wbSeq++;
                wbQueue.push_back(std::move(e));
            }
            progressThisCycle = true;
        }

        // 2. Function-unit pipeline completions.
        for (auto it = inFlight.begin(); it != inFlight.end();) {
            if (it->completeCycle <= _cycle) {
                for (const auto& dst : it->dsts) {
                    WbEntry e;
                    e.thread = it->thread;
                    e.dst = dst;
                    e.value = it->value;
                    e.srcCluster = it->srcCluster;
                    e.seq = wbSeq++;
                    wbQueue.push_back(std::move(e));
                }
                it = inFlight.erase(it);
                progressThisCycle = true;
            } else {
                ++it;
            }
        }

        // 3. Writeback arbitration over the interconnection network.
        doWriteback();

        // 4. Issue: each unit independently selects one ready pending
        //    operation over a frozen view of the presence bits.
        std::vector<IssueDecision> decisions;
        const bool round_robin =
            machine.arbitration == config::ArbitrationPolicy::RoundRobin;
        for (std::size_t fu = 0; fu < fus.size(); ++fu) {
            const std::size_t n = activeList.size();
            std::size_t start = 0;
            if (round_robin && n > 0) {
                while (start < n &&
                       activeList[start] <= rrLastThread[fu])
                    ++start;
                if (start == n)
                    start = 0;
            }
            bool taken = false;
            int blockedThread = -1;
            sim::StallCause blockedCause = sim::StallCause::NoReadyOp;
            for (std::size_t k = 0; k < n && !taken; ++k) {
                const int ti = activeList[(start + k) % n];
                sim::ThreadContext& t = *threads[ti];
                const auto& inst = t.currentInstruction();
                for (std::size_t s = 0; s < inst.slots.size(); ++s) {
                    if (inst.slots[s].fu != fu || t.slotIssued(s))
                        continue;
                    const bool ready =
                        operandsReady(t, inst.slots[s].op);
                    if (ready &&
                        opCaches.present(static_cast<int>(fu),
                                         t.codeIndex(),
                                         static_cast<std::uint32_t>(
                                             t.ip()),
                                         _cycle)) {
                        decisions.push_back({static_cast<int>(fu),
                                             static_cast<int>(ti), s});
                        taken = true;
                        rrLastThread[fu] = ti;
                    } else if (blockedThread < 0) {
                        blockedThread = ti;
                        blockedCause =
                            ready ? sim::StallCause::OpcacheMiss
                                  : classifyOperandStall(
                                        t, inst.slots[s].op);
                    }
                    break;  // at most one op per (thread, fu) per row
                }
            }
            if (!taken) {
                if (n == 0)
                    noteFuCycle(static_cast<int>(fu), -1,
                                sim::StallCause::IdleNoThread);
                else
                    noteFuCycle(static_cast<int>(fu), blockedThread,
                                blockedCause);
            }
        }
        for (const auto& d : decisions)
            executeIssue(d);

        // 5. End of cycle: retire/advance threads, activate spawns.
        bool freed_slot = false;
        for (int ti : activeList) {
            if (threads[ti]->endOfCycle(_cycle)) {
                progressThisCycle = true;
                freed_slot = true;
            }
        }
        std::erase_if(activeList, [&](int ti) {
            return threads[ti]->state() != sim::ThreadState::Active;
        });
        if (freed_slot)
            manageActiveSet();
        for (auto it = pendingSpawns.begin();
             it != pendingSpawns.end();) {
            if (it->readyCycle > _cycle + 1) {
                ++it;
                continue;
            }
            if (machine.maxActiveThreads > 0 &&
                    activeThreads() >= machine.maxActiveThreads) {
                waitingForSlot.push_back(std::move(*it));
            } else {
                spawnThread(it->forkTarget, it->args);
            }
            it = pendingSpawns.erase(it);
        }

        manageActiveSet();

        _stats.peakActiveThreads =
            std::max(_stats.peakActiveThreads, activeThreads());

        ++_cycle;
        if (progressThisCycle)
            lastProgressCycle = _cycle;
        checkDeadlock();
        return true;
    }

    bool finished() const
    {
        return activeList.empty() && suspended.empty() &&
               wbQueue.empty() && inFlight.empty() && mem->idle() &&
               pendingSpawns.empty() && waitingForSlot.empty();
    }

    std::uint64_t cycle() const { return _cycle; }
    const sim::MemorySystem& memory() const { return *mem; }
    int activeThreads() const
    {
        return static_cast<int>(activeList.size());
    }

    sim::RunStats stats() const
    {
        sim::RunStats out = _stats;
        out.cycles = _cycle;
        const auto& ms = mem->stats();
        out.memAccesses = ms.accesses;
        out.memHits = ms.hits;
        out.memMisses = ms.misses;
        out.memParked = ms.parked;
        out.memParkedCycles = ms.parkedCycles;
        out.memBankDelayCycles = ms.bankDelayCycles;
        out.opCacheHits = opCaches.stats().hits;
        out.opCacheMisses = opCaches.stats().misses;
        out.opCacheLineWaitCycles = opCaches.stats().lineWaitCycles;
        out.wbGrantsByCluster = network.stats().grantsByCluster;
        out.wbDenialsByCluster = network.stats().denialsByCluster;
        if (faults) {
            out.faultsEnabled = true;
            out.faults = faults->counts();
        }

        out.threads.clear();
        for (const auto& t : threads) {
            sim::ThreadStats ts;
            ts.name = t->code().name;
            ts.spawnCycle = t->spawnCycle();
            ts.endCycle = t->endCycle();
            ts.opsIssued = t->opsIssued();
            ts.stalls =
                threadStalls[static_cast<std::size_t>(t->id())];
            out.threads.push_back(ts);
        }
        return out;
    }

  private:
    struct FuState
    {
        int cluster = 0;
        isa::UnitType type = isa::UnitType::Integer;
        int latency = 1;
    };

    struct InFlightResult
    {
        std::uint64_t completeCycle = 0;
        int thread = 0;
        int srcCluster = 0;
        std::vector<isa::RegRef> dsts;
        isa::Value value;
    };

    struct WbEntry
    {
        int thread = 0;
        isa::RegRef dst;
        isa::Value value;
        int srcCluster = 0;
        std::uint64_t seq = 0;
    };

    struct PendingSpawn
    {
        std::uint64_t readyCycle = 0;
        std::uint32_t forkTarget = 0;
        std::vector<isa::Value> args;
    };

    struct IssueDecision
    {
        int fu = 0;
        int threadIndex = 0;
        std::size_t slot = 0;
    };

    void spawnThread(std::uint32_t fork_target,
                     const std::vector<isa::Value>& args)
    {
        const auto& code = program.threads.at(fork_target);
        const int id = static_cast<int>(threads.size());
        auto t = std::make_unique<sim::ThreadContext>(id, &code,
                                                      fork_target,
                                                      _cycle);
        PROCOUP_ASSERT(args.size() == code.paramHomes.size(),
                       "fork argument count mismatch");
        for (std::size_t i = 0; i < args.size(); ++i)
            t->regs().deposit(code.paramHomes[i], args[i]);
        if (t->state() == sim::ThreadState::Active)
            activeList.push_back(id);
        threads.push_back(std::move(t));
        threadStalls.push_back(sim::StallCounts{});
        ++_stats.threadsSpawned;
        progressThisCycle = true;
    }

    bool operandsReady(const sim::ThreadContext& t,
                       const isa::Operation& op) const
    {
        for (const auto& src : op.srcs)
            if (src.isReg() && !t.regs().isValid(src.reg()))
                return false;
        for (const auto& dst : op.dsts)
            if (!t.regs().isValid(dst))
                return false;
        return true;
    }

    std::vector<isa::Value>
    readSources(const sim::ThreadContext& t,
                const isa::Operation& op) const
    {
        std::vector<isa::Value> vals;
        vals.reserve(op.srcs.size());
        for (const auto& src : op.srcs)
            vals.push_back(src.isReg() ? t.regs().read(src.reg())
                                       : src.imm());
        return vals;
    }

    void noteFuCycle(int fu, int thread, sim::StallCause cause)
    {
        const int k = static_cast<int>(cause);
        ++_stats.stallsByFu[fu][k];
        ++_stats.stallsByCluster[fus[fu].cluster][k];
        ++_stats.stallsTotal[k];
        if (thread >= 0)
            ++threadStalls[thread][k];
    }

    sim::StallCause
    classifyOperandStall(const sim::ThreadContext& t,
                         const isa::Operation& op) const
    {
        const isa::RegRef* blocker = nullptr;
        for (const auto& src : op.srcs) {
            if (src.isReg() && !t.regs().isValid(src.reg())) {
                blocker = &src.reg();
                break;
            }
        }
        if (!blocker) {
            for (const auto& dst : op.dsts) {
                if (!t.regs().isValid(dst)) {
                    blocker = &dst;
                    break;
                }
            }
        }
        PROCOUP_ASSERT(blocker != nullptr,
                       "operand stall without an invalid register");

        for (const auto& e : wbQueue)
            if (e.thread == t.id() && e.dst == *blocker)
                return sim::StallCause::WritebackConflict;
        if (mem->hasPendingWrite(t.id(), *blocker))
            return sim::StallCause::MemoryBusy;
        return sim::StallCause::OperandNotReady;
    }

    void executeIssue(const IssueDecision& d)
    {
        using isa::Opcode;
        sim::ThreadContext& t = *threads[d.threadIndex];
        const auto& slot = t.currentInstruction().slots[d.slot];
        const isa::Operation& op = slot.op;
        const FuState& fu = fus[d.fu];

        const std::vector<isa::Value> srcs = readSources(t, op);

        for (const auto& dst : op.dsts)
            t.regs().clearValid(dst);

        switch (op.opcode) {
          case Opcode::LD: {
            const std::int64_t addr = srcs[0].asInt() + srcs[1].asInt();
            if (addr < 0)
                throw SimError(strCat("negative load address ", addr,
                                      " in thread ", t.id()));
            mem->issueLoad(_cycle, t.id(),
                           static_cast<std::uint32_t>(addr), op.flavor,
                           op.dsts, fu.cluster);
            break;
          }
          case Opcode::ST: {
            const std::int64_t addr = srcs[0].asInt() + srcs[1].asInt();
            if (addr < 0)
                throw SimError(strCat("negative store address ", addr,
                                      " in thread ", t.id()));
            mem->issueStore(_cycle, t.id(),
                            static_cast<std::uint32_t>(addr), op.flavor,
                            srcs[2]);
            break;
          }
          case Opcode::BR:
            t.setBranch(true, op.branchTarget, _cycle + fu.latency - 1);
            break;
          case Opcode::BT:
            t.setBranch(srcs[0].truthy(), op.branchTarget,
                        _cycle + fu.latency - 1);
            break;
          case Opcode::BF:
            t.setBranch(!srcs[0].truthy(), op.branchTarget,
                        _cycle + fu.latency - 1);
            break;
          case Opcode::FORK: {
            PendingSpawn ps;
            ps.readyCycle = _cycle + fu.latency;
            if (faults)
                ps.readyCycle +=
                    static_cast<std::uint64_t>(faults->spawnDelay());
            ps.forkTarget = op.forkTarget;
            ps.args = srcs;
            pendingSpawns.push_back(std::move(ps));
            break;
          }
          case Opcode::ETHR:
            t.setEnd(_cycle + fu.latency - 1);
            break;
          case Opcode::MARK:
            _stats.marks.push_back({t.id(), op.markId, _cycle});
            break;
          case Opcode::NOP:
            break;
          default: {
            InFlightResult r;
            r.completeCycle = _cycle + fu.latency;
            if (faults)
                r.completeCycle += static_cast<std::uint64_t>(
                    faults->pipelineBubble());
            r.thread = t.id();
            r.srcCluster = fu.cluster;
            r.dsts = op.dsts;
            r.value = sim::evalAlu(op.opcode, srcs);
            inFlight.push_back(std::move(r));
            break;
          }
        }

        t.markIssued(d.slot);
        t.noteIssue(_cycle);
        noteFuCycle(d.fu, t.id(), sim::StallCause::Issued);
        ++_stats.opsByFu[d.fu];
        ++_stats.opsByUnit[static_cast<int>(fu.type)];
        ++_stats.totalOps;
        progressThisCycle = true;
    }

    void doWriteback()
    {
        std::stable_sort(wbQueue.begin(), wbQueue.end(),
                         [](const WbEntry& a, const WbEntry& b) {
                             if (a.thread != b.thread)
                                 return a.thread < b.thread;
                             return a.seq < b.seq;
                         });

        std::deque<WbEntry> still_waiting;
        for (auto& e : wbQueue) {
            if (network.tryGrant(e.srcCluster, e.dst.cluster)) {
                threads[e.thread]->regs().write(e.dst, e.value);
                ++_stats.writebacks;
                if (e.srcCluster != e.dst.cluster)
                    ++_stats.remoteWrites;
                progressThisCycle = true;
            } else {
                still_waiting.push_back(std::move(e));
            }
        }
        _stats.writebackStallCycles += still_waiting.size();
        wbQueue = std::move(still_waiting);
    }

    void manageActiveSet()
    {
        auto has_slot = [&] {
            return machine.maxActiveThreads == 0 ||
                   activeThreads() < machine.maxActiveThreads;
        };
        while (has_slot() && !suspended.empty()) {
            const int ti = suspended.front();
            suspended.pop_front();
            threads[ti]->noteIssue(_cycle);  // fresh idle clock
            activeList.push_back(ti);
            std::sort(activeList.begin(), activeList.end());
            progressThisCycle = true;
        }
        while (has_slot() && !waitingForSlot.empty()) {
            PendingSpawn ps = std::move(waitingForSlot.front());
            waitingForSlot.pop_front();
            spawnThread(ps.forkTarget, ps.args);
        }

        if (machine.swapOutIdleCycles <= 0 ||
                machine.maxActiveThreads <= 0)
            return;
        const bool someone_waits =
            !waitingForSlot.empty() || !suspended.empty();
        if (!someone_waits)
            return;
        for (auto it = activeList.begin(); it != activeList.end();) {
            sim::ThreadContext& t = *threads[*it];
            const bool idle =
                _cycle - t.lastIssueCycle() >
                static_cast<std::uint64_t>(machine.swapOutIdleCycles);
            if (idle) {
                suspended.push_back(*it);
                it = activeList.erase(it);
                progressThisCycle = true;
                if (!waitingForSlot.empty()) {
                    PendingSpawn ps = std::move(waitingForSlot.front());
                    waitingForSlot.pop_front();
                    spawnThread(ps.forkTarget, ps.args);
                }
            } else {
                ++it;
            }
        }
    }

    void checkDeadlock()
    {
        if (finished() || progressThisCycle)
            return;
        if (_cycle - lastProgressCycle >
                static_cast<std::uint64_t>(machine.deadlockCycleLimit))
            reportDeadlock();
    }

    // Byte-identical to sim::Simulator::reportDeadlock — the property
    // test compares what() strings when both simulators deadlock.
    [[noreturn]] void reportDeadlock()
    {
        std::string s = strCat("deadlock at cycle ", _cycle, ": ");
        s += strCat(mem->parkedCount(), " parked memory reference(s); ");
        s += strCat("stalls{",
                    sim::formatStallCounts(_stats.stallsTotal), "}; ");
        for (const auto& t : threads) {
            if (t->state() != sim::ThreadState::Active)
                continue;
            s += strCat("[thread ", t->id(), " '", t->code().name,
                        "' ip=", t->ip());
            const auto& inst = t->currentInstruction();
            for (std::size_t i = 0; i < inst.slots.size(); ++i) {
                if (t->slotIssued(i))
                    continue;
                const isa::Operation& op = inst.slots[i].op;
                s += strCat(" waiting:", op.toString());
                s += operandsReady(*t, op)
                         ? "{ready}"
                         : strCat("{",
                                  sim::stallCauseName(
                                      classifyOperandStall(*t, op)),
                                  "}");
            }
            s += "] ";
        }
        throw SimError(SimErrorKind::Deadlock, _cycle, s);
    }

    config::MachineConfig machine;
    isa::Program program;
    sim::SimOptions opts;
    std::unique_ptr<fault::FaultInjector> faults;

    std::vector<FuState> fus;
    std::vector<int> rrLastThread;

    std::unique_ptr<sim::MemorySystem> mem;
    sim::WritebackNetwork network;
    sim::OpCaches opCaches;

    std::vector<std::unique_ptr<sim::ThreadContext>> threads;
    std::vector<int> activeList;

    std::deque<PendingSpawn> pendingSpawns;
    std::deque<PendingSpawn> waitingForSlot;
    std::deque<int> suspended;

    std::vector<InFlightResult> inFlight;
    std::deque<WbEntry> wbQueue;
    std::uint64_t wbSeq = 0;

    std::uint64_t _cycle = 0;
    std::uint64_t lastProgressCycle = 0;
    bool progressThisCycle = false;

    std::vector<sim::StallCounts> threadStalls;

    sim::RunStats _stats;
};

} // namespace simtest
} // namespace procoup

#endif // PROCOUP_TESTS_SLOW_REFERENCE_SIM_HH
