/** @file Golden cycle counts for the baseline machine.
 *
 *  The entire system is deterministic, so the Table 2 cycle counts
 *  are exact regression values. If an intentional compiler/simulator
 *  change moves them, re-measure with `bench/table2_baseline`, check
 *  the shape still tracks the paper (EXPERIMENTS.md), and update the
 *  table below — a diff here should always be a conscious decision,
 *  never noise. */

#include <gtest/gtest.h>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"

namespace procoup {
namespace {

using core::SimMode;

struct Golden
{
    const char* bench;
    SimMode mode;
    std::uint64_t cycles;
};

class GoldenCycles : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenCycles, BaselineCycleCountIsStable)
{
    const auto& p = GetParam();
    core::CoupledNode node(config::baseline());
    const auto run =
        node.runBenchmark(benchmarks::byName(p.bench), p.mode);
    EXPECT_EQ(run.stats.cycles, p.cycles);
}

/** Same workloads on a 100-cycle-hit memory system. Long quiescent
 *  stretches between arrivals make this the configuration where the
 *  simulator's fast-forward path does almost all of the work, so these
 *  values pin its cycle accounting against the step-by-step path. */
class GoldenCyclesHighMemLatency
    : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenCyclesHighMemLatency, CycleCountIsStable)
{
    const auto& p = GetParam();
    config::MachineConfig machine = config::baseline();
    machine.memory.hitLatency = 100;
    core::CoupledNode node(machine);
    const auto run =
        node.runBenchmark(benchmarks::byName(p.bench), p.mode);
    EXPECT_EQ(run.stats.cycles, p.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    HighMemLatency, GoldenCyclesHighMemLatency,
    ::testing::Values(
        Golden{"Matrix", SimMode::Seq, 74283},
        Golden{"Matrix", SimMode::Coupled, 3826},
        Golden{"FFT", SimMode::Coupled, 13613},
        Golden{"LUD", SimMode::Coupled, 462959},
        Golden{"Model", SimMode::Tpe, 39364},
        Golden{"Model", SimMode::Coupled, 38880}),
    [](const ::testing::TestParamInfo<Golden>& i) {
        return std::string(i.param.bench) + "_" +
               core::simModeName(i.param.mode);
    });

INSTANTIATE_TEST_SUITE_P(
    Table2, GoldenCycles,
    ::testing::Values(
        Golden{"Matrix", SimMode::Seq, 2020},
        Golden{"Matrix", SimMode::Sts, 1291},
        Golden{"Matrix", SimMode::Tpe, 634},
        Golden{"Matrix", SimMode::Coupled, 618},
        Golden{"Matrix", SimMode::Ideal, 368},
        Golden{"FFT", SimMode::Seq, 4367},
        Golden{"FFT", SimMode::Sts, 2495},
        Golden{"FFT", SimMode::Tpe, 2877},
        Golden{"FFT", SimMode::Coupled, 1635},
        Golden{"FFT", SimMode::Ideal, 219},
        Golden{"LUD", SimMode::Seq, 81470},
        Golden{"LUD", SimMode::Sts, 81406},
        Golden{"LUD", SimMode::Tpe, 46814},
        Golden{"LUD", SimMode::Coupled, 45527},
        Golden{"Model", SimMode::Seq, 2920},
        Golden{"Model", SimMode::Sts, 2520},
        Golden{"Model", SimMode::Tpe, 1740},
        Golden{"Model", SimMode::Coupled, 1668}),
    [](const ::testing::TestParamInfo<Golden>& i) {
        return std::string(i.param.bench) + "_" +
               core::simModeName(i.param.mode);
    });

} // namespace
} // namespace procoup
