/** @file Golden cycle counts for the baseline machine.
 *
 *  The entire system is deterministic, so the Table 2 cycle counts
 *  are exact regression values. If an intentional compiler/simulator
 *  change moves them, re-measure with `bench/table2_baseline`, check
 *  the shape still tracks the paper (EXPERIMENTS.md), and update the
 *  table below — a diff here should always be a conscious decision,
 *  never noise. */

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"

namespace procoup {
namespace {

using core::SimMode;

struct Golden
{
    const char* bench;
    SimMode mode;
    std::uint64_t cycles;
};

class GoldenCycles : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenCycles, BaselineCycleCountIsStable)
{
    const auto& p = GetParam();
    core::CoupledNode node(config::baseline());
    const auto run =
        node.runBenchmark(benchmarks::byName(p.bench), p.mode);
    EXPECT_EQ(run.stats.cycles, p.cycles);
}

/** Same workloads on a 100-cycle-hit memory system. Long quiescent
 *  stretches between arrivals make this the configuration where the
 *  simulator's fast-forward path does almost all of the work, so these
 *  values pin its cycle accounting against the step-by-step path. */
class GoldenCyclesHighMemLatency
    : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenCyclesHighMemLatency, CycleCountIsStable)
{
    const auto& p = GetParam();
    config::MachineConfig machine = config::baseline();
    machine.memory.hitLatency = 100;
    core::CoupledNode node(machine);
    const auto run =
        node.runBenchmark(benchmarks::byName(p.bench), p.mode);
    EXPECT_EQ(run.stats.cycles, p.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    HighMemLatency, GoldenCyclesHighMemLatency,
    ::testing::Values(
        Golden{"Matrix", SimMode::Seq, 74283},
        Golden{"Matrix", SimMode::Coupled, 3826},
        Golden{"FFT", SimMode::Coupled, 13613},
        Golden{"LUD", SimMode::Coupled, 462959},
        Golden{"Model", SimMode::Tpe, 39364},
        Golden{"Model", SimMode::Coupled, 38880}),
    [](const ::testing::TestParamInfo<Golden>& i) {
        return std::string(i.param.bench) + "_" +
               core::simModeName(i.param.mode);
    });

/** The generator-era benchmark families (Sort, Stencil, Queue) pin
 *  their cycles through a checked-in data file so the values live
 *  next to the other goldens under tests/golden/ and can be
 *  re-measured with pcsim without recompiling this test. */
TEST(GoldenCyclesFile, NewFamiliesMatchCheckedInGoldens)
{
    std::ifstream f(std::string(PROCOUP_SOURCE_DIR) +
                    "/tests/golden/new_families_cycles.txt");
    ASSERT_TRUE(f.is_open());

    core::CoupledNode node(config::baseline());
    int checked = 0;
    std::string line;
    while (std::getline(f, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string bench, mode;
        std::uint64_t cycles = 0;
        ASSERT_TRUE(ss >> bench >> mode >> cycles) << line;

        bool found = false;
        for (const auto m : core::allSimModes()) {
            std::string name = core::simModeName(m);
            for (auto& c : name)
                c = static_cast<char>(std::tolower(c));
            if (name != mode)
                continue;
            found = true;
            const auto run =
                node.runBenchmark(benchmarks::byName(bench), m);
            EXPECT_EQ(run.stats.cycles, cycles)
                << bench << " " << mode;
            ++checked;
        }
        ASSERT_TRUE(found) << "unknown mode in golden file: " << mode;
    }
    EXPECT_EQ(checked, 12);  // 3 families x 4 modes
}

INSTANTIATE_TEST_SUITE_P(
    Table2, GoldenCycles,
    ::testing::Values(
        Golden{"Matrix", SimMode::Seq, 2020},
        Golden{"Matrix", SimMode::Sts, 1291},
        Golden{"Matrix", SimMode::Tpe, 634},
        Golden{"Matrix", SimMode::Coupled, 618},
        Golden{"Matrix", SimMode::Ideal, 368},
        Golden{"FFT", SimMode::Seq, 4367},
        Golden{"FFT", SimMode::Sts, 2495},
        Golden{"FFT", SimMode::Tpe, 2877},
        Golden{"FFT", SimMode::Coupled, 1635},
        Golden{"FFT", SimMode::Ideal, 219},
        Golden{"LUD", SimMode::Seq, 81470},
        Golden{"LUD", SimMode::Sts, 81406},
        Golden{"LUD", SimMode::Tpe, 46814},
        Golden{"LUD", SimMode::Coupled, 45527},
        Golden{"Model", SimMode::Seq, 2920},
        Golden{"Model", SimMode::Sts, 2520},
        Golden{"Model", SimMode::Tpe, 1740},
        Golden{"Model", SimMode::Coupled, 1668}),
    [](const ::testing::TestParamInfo<Golden>& i) {
        return std::string(i.param.bench) + "_" +
               core::simModeName(i.param.mode);
    });

} // namespace
} // namespace procoup
