/** @file Integration tests: the paper's benchmark suite computes
 *  correct results in every simulation mode, and the headline
 *  qualitative relationships of the evaluation hold. */

#include <gtest/gtest.h>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

using core::CoupledNode;
using core::SimMode;

struct BenchModeCase
{
    const char* bench;
    SimMode mode;
};

std::string
caseName(const ::testing::TestParamInfo<BenchModeCase>& info)
{
    return std::string(info.param.bench) + "_" +
           core::simModeName(info.param.mode);
}

class BenchmarkCorrectness
    : public ::testing::TestWithParam<BenchModeCase>
{};

TEST_P(BenchmarkCorrectness, ComputesReferenceResult)
{
    const auto& p = GetParam();
    const auto& bench = benchmarks::byName(p.bench);
    CoupledNode node(config::baseline());
    const auto run = node.runBenchmark(bench, p.mode);
    std::string why;
    EXPECT_TRUE(benchmarks::verify(p.bench, run, &why)) << why;
    EXPECT_GT(run.stats.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, BenchmarkCorrectness,
    ::testing::Values(
        BenchModeCase{"Matrix", SimMode::Seq},
        BenchModeCase{"Matrix", SimMode::Sts},
        BenchModeCase{"Matrix", SimMode::Tpe},
        BenchModeCase{"Matrix", SimMode::Coupled},
        BenchModeCase{"Matrix", SimMode::Ideal},
        BenchModeCase{"FFT", SimMode::Seq},
        BenchModeCase{"FFT", SimMode::Sts},
        BenchModeCase{"FFT", SimMode::Tpe},
        BenchModeCase{"FFT", SimMode::Coupled},
        BenchModeCase{"FFT", SimMode::Ideal},
        BenchModeCase{"LUD", SimMode::Seq},
        BenchModeCase{"LUD", SimMode::Sts},
        BenchModeCase{"LUD", SimMode::Tpe},
        BenchModeCase{"LUD", SimMode::Coupled},
        BenchModeCase{"Model", SimMode::Seq},
        BenchModeCase{"Model", SimMode::Sts},
        BenchModeCase{"Model", SimMode::Tpe},
        BenchModeCase{"Model", SimMode::Coupled}),
    caseName);

TEST(BenchmarkSuite, LudAndModelHaveNoIdealVersion)
{
    EXPECT_FALSE(benchmarks::lud().hasIdeal());
    EXPECT_FALSE(benchmarks::model().hasIdeal());
    EXPECT_THROW(benchmarks::lud().forMode(SimMode::Ideal),
                 CompileError);
}

TEST(BenchmarkSuite, QualitativeShape)
{
    // The paper's headline relationships (Table 2): STS beats SEQ,
    // Coupled beats STS, Ideal is the lower bound, and Coupled is
    // within noise of the best mode on every benchmark.
    CoupledNode node(config::baseline());
    for (const auto& bench : benchmarks::all()) {
        SCOPED_TRACE(bench.name);
        const auto seq = node.runBenchmark(bench, SimMode::Seq);
        const auto sts = node.runBenchmark(bench, SimMode::Sts);
        const auto coupled =
            node.runBenchmark(bench, SimMode::Coupled);
        EXPECT_LT(sts.stats.cycles, seq.stats.cycles);
        EXPECT_LT(coupled.stats.cycles, sts.stats.cycles);
        if (bench.hasIdeal()) {
            const auto ideal =
                node.runBenchmark(bench, SimMode::Ideal);
            EXPECT_LT(ideal.stats.cycles, coupled.stats.cycles);
        }
    }
}

TEST(BenchmarkSuite, CoupledMatchesOrBeatsTpe)
{
    // TPE ~= Coupled on the easily partitioned benchmarks; FFT's
    // sequential section makes TPE lose clearly (the paper's key
    // observation).
    CoupledNode node(config::baseline());
    const auto& fft = benchmarks::byName("FFT");
    const auto tpe = node.runBenchmark(fft, SimMode::Tpe);
    const auto coupled = node.runBenchmark(fft, SimMode::Coupled);
    EXPECT_LT(coupled.stats.cycles, tpe.stats.cycles);
}

TEST(BenchmarkSuite, RunsAreDeterministic)
{
    CoupledNode node(config::withMem1(config::baseline()));
    const auto& bench = benchmarks::byName("Matrix");
    const auto a = node.runBenchmark(bench, SimMode::Coupled);
    const auto b = node.runBenchmark(bench, SimMode::Coupled);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.totalOps, b.stats.totalOps);
}

} // namespace
} // namespace procoup
