/** @file Parameterized coverage of the functional ALU semantics. */

#include <gtest/gtest.h>

#include <cmath>

#include "procoup/sim/alu.hh"
#include "procoup/support/error.hh"

namespace procoup {
namespace {

using isa::Opcode;
using isa::Value;
using sim::evalAlu;

// --- Integer binary operations ---------------------------------------

struct IntBinCase
{
    const char* name;
    Opcode op;
    std::int64_t a;
    std::int64_t b;
    std::int64_t expect;
};

class IntBinTest : public ::testing::TestWithParam<IntBinCase> {};

TEST_P(IntBinTest, Evaluates)
{
    const auto& p = GetParam();
    const Value r =
        evalAlu(p.op, {Value::makeInt(p.a), Value::makeInt(p.b)});
    EXPECT_FALSE(r.isFloat());
    EXPECT_EQ(r.rawInt(), p.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, IntBinTest,
    ::testing::Values(
        IntBinCase{"add", Opcode::IADD, 7, 5, 12},
        IntBinCase{"add_negative", Opcode::IADD, -7, 5, -2},
        IntBinCase{"sub", Opcode::ISUB, 7, 5, 2},
        IntBinCase{"mul", Opcode::IMUL, -3, 9, -27},
        IntBinCase{"div", Opcode::IDIV, 17, 5, 3},
        IntBinCase{"div_negative", Opcode::IDIV, -17, 5, -3},
        IntBinCase{"mod", Opcode::IMOD, 17, 5, 2},
        IntBinCase{"and", Opcode::IAND, 0b1100, 0b1010, 0b1000},
        IntBinCase{"or", Opcode::IOR, 0b1100, 0b1010, 0b1110},
        IntBinCase{"xor", Opcode::IXOR, 0b1100, 0b1010, 0b0110},
        IntBinCase{"shl", Opcode::ISHL, 3, 4, 48},
        IntBinCase{"shr", Opcode::ISHR, 48, 4, 3},
        IntBinCase{"lt_true", Opcode::ILT, 2, 3, 1},
        IntBinCase{"lt_false", Opcode::ILT, 3, 2, 0},
        IntBinCase{"le_equal", Opcode::ILE, 3, 3, 1},
        IntBinCase{"eq", Opcode::IEQ, 4, 4, 1},
        IntBinCase{"ne", Opcode::INE, 4, 4, 0},
        IntBinCase{"gt", Opcode::IGT, 5, 4, 1},
        IntBinCase{"ge", Opcode::IGE, 4, 5, 0}),
    [](const ::testing::TestParamInfo<IntBinCase>& i) {
        return i.param.name;
    });

// --- Float binary operations -----------------------------------------

struct FloatBinCase
{
    const char* name;
    Opcode op;
    double a;
    double b;
    double expect;
    bool int_result;
};

class FloatBinTest : public ::testing::TestWithParam<FloatBinCase> {};

TEST_P(FloatBinTest, Evaluates)
{
    const auto& p = GetParam();
    const Value r =
        evalAlu(p.op, {Value::makeFloat(p.a), Value::makeFloat(p.b)});
    if (p.int_result) {
        EXPECT_FALSE(r.isFloat());
        EXPECT_EQ(r.rawInt(), static_cast<std::int64_t>(p.expect));
    } else {
        EXPECT_TRUE(r.isFloat());
        EXPECT_DOUBLE_EQ(r.rawFloat(), p.expect);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, FloatBinTest,
    ::testing::Values(
        FloatBinCase{"add", Opcode::FADD, 1.5, 2.25, 3.75, false},
        FloatBinCase{"sub", Opcode::FSUB, 1.5, 2.0, -0.5, false},
        FloatBinCase{"mul", Opcode::FMUL, -1.5, 2.0, -3.0, false},
        FloatBinCase{"div", Opcode::FDIV, 7.0, 2.0, 3.5, false},
        FloatBinCase{"lt", Opcode::FLT, 1.0, 2.0, 1, true},
        FloatBinCase{"le", Opcode::FLE, 2.0, 2.0, 1, true},
        FloatBinCase{"eq", Opcode::FEQ, 2.0, 2.5, 0, true},
        FloatBinCase{"ne", Opcode::FNE, 2.0, 2.5, 1, true},
        FloatBinCase{"gt", Opcode::FGT, 2.5, 2.0, 1, true},
        FloatBinCase{"ge", Opcode::FGE, 1.0, 2.0, 0, true}),
    [](const ::testing::TestParamInfo<FloatBinCase>& i) {
        return i.param.name;
    });

// --- Unary / conversion / move ----------------------------------------

TEST(Alu, UnaryOps)
{
    EXPECT_EQ(evalAlu(Opcode::INEG, {Value::makeInt(5)}).rawInt(), -5);
    EXPECT_EQ(evalAlu(Opcode::INOT, {Value::makeInt(0)}).rawInt(), 1);
    EXPECT_EQ(evalAlu(Opcode::INOT, {Value::makeInt(7)}).rawInt(), 0);
    EXPECT_DOUBLE_EQ(
        evalAlu(Opcode::FNEG, {Value::makeFloat(2.5)}).rawFloat(),
        -2.5);
}

TEST(Alu, Conversions)
{
    const Value f = evalAlu(Opcode::ITOF, {Value::makeInt(-3)});
    EXPECT_TRUE(f.isFloat());
    EXPECT_DOUBLE_EQ(f.rawFloat(), -3.0);

    const Value i = evalAlu(Opcode::FTOI, {Value::makeFloat(2.9)});
    EXPECT_FALSE(i.isFloat());
    EXPECT_EQ(i.rawInt(), 2);  // truncation toward zero
    EXPECT_EQ(evalAlu(Opcode::FTOI, {Value::makeFloat(-2.9)}).rawInt(),
              -2);
}

TEST(Alu, MovesPreserveTags)
{
    const Value fi = evalAlu(Opcode::MOV, {Value::makeFloat(1.25)});
    EXPECT_TRUE(fi.isFloat());
    EXPECT_DOUBLE_EQ(fi.rawFloat(), 1.25);
    const Value ii = evalAlu(Opcode::FMOV, {Value::makeInt(9)});
    EXPECT_FALSE(ii.isFloat());
    EXPECT_EQ(ii.rawInt(), 9);
}

TEST(Alu, MixedTagOperandsConvert)
{
    // Integer unit coerces floats to ints; float unit the reverse.
    EXPECT_EQ(evalAlu(Opcode::IADD, {Value::makeFloat(2.9),
                                     Value::makeInt(1)})
                  .rawInt(),
              3);
    EXPECT_DOUBLE_EQ(evalAlu(Opcode::FMUL, {Value::makeInt(3),
                                            Value::makeFloat(0.5)})
                         .rawFloat(),
                     1.5);
}

TEST(Alu, DivisionByZeroTraps)
{
    EXPECT_THROW(
        evalAlu(Opcode::IDIV, {Value::makeInt(1), Value::makeInt(0)}),
        SimError);
    EXPECT_THROW(
        evalAlu(Opcode::IMOD, {Value::makeInt(1), Value::makeInt(0)}),
        SimError);
    // IEEE float division by zero is defined.
    EXPECT_TRUE(std::isinf(
        evalAlu(Opcode::FDIV,
                {Value::makeFloat(1.0), Value::makeFloat(0.0)})
            .rawFloat()));
}

} // namespace
} // namespace procoup
