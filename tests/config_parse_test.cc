/** @file Tests for the machine-description parser. */

#include <gtest/gtest.h>

#include "procoup/config/parse.hh"
#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"
#include "procoup/support/error.hh"
#include "procoup/support/strings.hh"

namespace procoup {
namespace {

using config::parseMachine;

TEST(ConfigParse, FullDescription)
{
    const auto m = parseMachine(R"(
        (machine testbox
          (cluster (iu 1) (fpu 4) (mem 2))
          (cluster (iu 1) (mem 1))
          (cluster (br 1))
          (interconnect tri-port)
          (memory :hit 2 :miss-rate 0.05 :penalty 20 100
                  :banks 8 :seed 7 :bank-conflicts)
          (max-active-threads 16))
    )");
    EXPECT_EQ(m.name, "testbox");
    ASSERT_EQ(m.clusters.size(), 3u);
    EXPECT_EQ(m.clusters[0].units.size(), 3u);
    EXPECT_EQ(m.clusters[0].units[1].type, isa::UnitType::Float);
    EXPECT_EQ(m.clusters[0].units[1].latency, 4);
    EXPECT_EQ(m.interconnect, config::InterconnectScheme::TriPort);
    EXPECT_EQ(m.memory.hitLatency, 2);
    EXPECT_DOUBLE_EQ(m.memory.missRate, 0.05);
    EXPECT_EQ(m.memory.missPenaltyMax, 100);
    EXPECT_EQ(m.memory.numBanks, 8);
    EXPECT_EQ(m.memory.seed, 7u);
    EXPECT_TRUE(m.memory.modelBankConflicts);
    EXPECT_EQ(m.maxActiveThreads, 16);
}

TEST(ConfigParse, DefaultsAreSane)
{
    const auto m = parseMachine(
        "(machine (cluster (iu) (fpu) (mem)) (cluster (br)))");
    EXPECT_EQ(m.clusters[0].units[0].latency, 1);
    EXPECT_EQ(m.interconnect, config::InterconnectScheme::Full);
    EXPECT_DOUBLE_EQ(m.memory.missRate, 0.0);
    EXPECT_EQ(m.maxActiveThreads, 0);
}

TEST(ConfigParse, AllInterconnectNames)
{
    const char* names[] = {"full", "tri-port", "dual-port",
                           "single-port", "shared-bus"};
    for (const char* n : names) {
        const auto m = parseMachine(strCat(
            "(machine (cluster (iu) (mem)) (cluster (br))"
            " (interconnect ", n, "))"));
        EXPECT_FALSE(
            config::interconnectSchemeName(m.interconnect).empty());
    }
}

TEST(ConfigParse, Rejections)
{
    // No clusters.
    EXPECT_THROW(parseMachine("(machine)"), CompileError);
    // No branch unit anywhere.
    EXPECT_THROW(parseMachine("(machine (cluster (iu) (mem)))"),
                 CompileError);
    // Unknown unit type.
    EXPECT_THROW(parseMachine(
        "(machine (cluster (gpu 1)) (cluster (br)))"), CompileError);
    // Bad latency.
    EXPECT_THROW(parseMachine(
        "(machine (cluster (iu 0)) (cluster (br)))"), CompileError);
    // Inverted penalty range.
    EXPECT_THROW(parseMachine(
        "(machine (cluster (iu) (mem)) (cluster (br))"
        " (memory :penalty 100 20))"), CompileError);
    // Miss rate out of range.
    EXPECT_THROW(parseMachine(
        "(machine (cluster (iu) (mem)) (cluster (br))"
        " (memory :miss-rate 1.5))"), CompileError);
    // Not a machine form.
    EXPECT_THROW(parseMachine("(cluster (iu))"), CompileError);
    // Unknown section.
    EXPECT_THROW(parseMachine(
        "(machine (cluster (iu) (mem)) (cluster (br)) (bogus))"),
        CompileError);
}

TEST(ConfigParse, OpCacheAndSwapSections)
{
    const auto m = parseMachine(R"(
        (machine knobs
          (cluster (iu) (fpu) (mem))
          (cluster (br))
          (opcache :lines 32 :rows-per-line 2 :penalty 6)
          (max-active-threads 8)
          (swap-out-idle 24))
    )");
    EXPECT_TRUE(m.opCache.enabled);
    EXPECT_EQ(m.opCache.linesPerUnit, 32);
    EXPECT_EQ(m.opCache.rowsPerLine, 2);
    EXPECT_EQ(m.opCache.missPenalty, 6);
    EXPECT_EQ(m.maxActiveThreads, 8);
    EXPECT_EQ(m.swapOutIdleCycles, 24);

    EXPECT_THROW(parseMachine(
        "(machine x (cluster (iu) (mem)) (cluster (br))"
        " (opcache :lines 0))"), CompileError);
}

TEST(ConfigParse, ParsedMachineRunsPrograms)
{
    // A parsed description is a first-class machine: compile and run.
    const auto m = parseMachine(R"(
        (machine two-cluster
          (cluster (iu 1) (fpu 1) (mem 1))
          (cluster (iu 1) (fpu 1) (mem 1))
          (cluster (br 1))
          (interconnect dual-port))
    )");
    core::CoupledNode node(m);
    const auto run = node.runSource(
        "(defvar out 0.0)"
        "(defun main ()"
        "  (let ((s 0.0))"
        "    (for (i 0 8) (set s (+ s (float i))))"
        "    (set out s)))",
        core::SimMode::Coupled);
    EXPECT_DOUBLE_EQ(run.value("out"), 28.0);
}

} // namespace
} // namespace procoup
