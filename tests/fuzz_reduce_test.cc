/**
 * @file
 * Crash/mismatch reduction: a known-bad program must minimize to a
 * stable, byte-identical witness.
 *
 * The seeded program is generate(42) with an injected classic lost
 * update — a forall whose iterations all read-modify-write one global
 * register variable. Thread cloning gives every forall execution its
 * own copy of captured register state, so the increments are lost in
 * every threaded mode while SEQ sees all of them: a guaranteed
 * mode-visible divergence. The reducer must strip the entire
 * generated program away and leave only the two forms that matter.
 */

#include <gtest/gtest.h>

#include <string>

#include "procoup/gen/generator.hh"
#include "procoup/gen/reduce.hh"
#include "procoup/gen/soak.hh"

using namespace procoup;

namespace {

/** generate(42) with a lost-update forall spliced into main. */
std::string
knownBadProgram()
{
    std::string src = gen::generate(42).source;
    const std::string inject =
        "\n  (forall (rz 0 6) (set g0 (+ g0 1)) (set g0 (+ g0 1)))";
    const std::size_t at = src.rfind(")\n");
    EXPECT_NE(at, std::string::npos);
    src.insert(at, inject);
    return src;
}

/** The exact minimized witness the reducer must converge to. */
const char* const kWitness =
    "(defvar g0 0)\n"
    "(defun main () (forall (rz 0 6) (set g0 (+ g0 1))))\n";

gen::ReduceResult
reduceOnce(const std::string& src)
{
    gen::SoakOptions inner;
    inner.reduceFailures = false;
    const auto stillFails = [&](const std::string& cand) {
        try {
            return !gen::checkProgram(cand, inner).empty();
        } catch (const CompileError&) {
            return false;
        }
    };
    gen::ReduceOptions rd;
    rd.maxProbes = 2000;
    return gen::reduce(src, stillFails, rd);
}

} // namespace

TEST(FuzzReduce, KnownBadProgramFailsTheBattery)
{
    gen::SoakOptions opts;
    const std::string msg =
        gen::checkProgram(knownBadProgram(), opts);
    ASSERT_NE(msg, "");
    EXPECT_NE(msg.find("mismatch"), std::string::npos) << msg;
}

TEST(FuzzReduce, MinimizesToStableWitness)
{
    const std::string bad = knownBadProgram();

    const gen::ReduceResult first = reduceOnce(bad);
    EXPECT_EQ(first.source, kWitness);

    // Stable: a second reduction of the same input is byte-identical.
    const gen::ReduceResult again = reduceOnce(bad);
    EXPECT_EQ(again.source, first.source);
    EXPECT_EQ(again.probes, first.probes);

    // Idempotent: reducing the witness returns the witness.
    const gen::ReduceResult fix = reduceOnce(first.source);
    EXPECT_EQ(fix.source, first.source);
}

TEST(FuzzReduce, CanonicalizeRoundTrips)
{
    // canonicalize() must be a fixpoint of itself and preserve what
    // the compiler sees (the reducer compares candidates by this
    // form).
    const std::string src = gen::generate(42).source;
    const std::string c1 = gen::canonicalize(src);
    EXPECT_EQ(gen::canonicalize(c1), c1);
}
