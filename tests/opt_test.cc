/** @file Unit tests for the optimization passes and liveness. */

#include <gtest/gtest.h>

#include "procoup/ir/frontend.hh"
#include "procoup/opt/liveness.hh"
#include "procoup/opt/passes.hh"

namespace procoup {
namespace {

using ir::Module;
using isa::Opcode;

Module
build(const std::string& src)
{
    return ir::buildModule(src);
}

int
countOps(const ir::ThreadFunc& f, Opcode op)
{
    int n = 0;
    for (const auto& b : f.blocks)
        for (const auto& i : b.instrs)
            if (i.op == op)
                ++n;
    return n;
}

int
totalOps(const ir::ThreadFunc& f)
{
    int n = 0;
    for (const auto& b : f.blocks)
        n += static_cast<int>(b.instrs.size());
    return n;
}

TEST(Opt, ConstantPropagationFoldsInlinedCalls)
{
    Module m = build(
        "(defvar out 0)"
        "(defun sq (x) (* x x))"
        "(defun main () (set out (sq (sq 3))))");
    opt::optimize(m);
    const auto& f = m.funcs[0];
    // (sq (sq 3)) = 81 entirely at compile time.
    EXPECT_EQ(countOps(f, Opcode::IMUL), 0);
    EXPECT_EQ(countOps(f, Opcode::MOV), 0);
    // Just the store of 81 and the ETHR remain.
    EXPECT_EQ(totalOps(f), 2);
    bool store81 = false;
    for (const auto& i : f.blocks[0].instrs)
        if (i.op == Opcode::ST && i.srcs[2].isConst() &&
                i.srcs[2].constant().asInt() == 81)
            store81 = true;
    EXPECT_TRUE(store81);
}

TEST(Opt, CopyPropagationShortensMovChains)
{
    // Chained lets aliasing one loaded value collapse to direct use.
    Module m2 = build(
        "(defarray src (1))"
        "(defvar out 0.0)"
        "(defun main ()"
        "  (let ((a (aref src 0)))"
        "    (let ((b a))"
        "      (let ((c b))"
        "        (set out c)))))");
    opt::optimize(m2);
    const auto& f = m2.funcs[0];
    EXPECT_EQ(countOps(f, Opcode::MOV), 0);
    EXPECT_EQ(countOps(f, Opcode::LD), 1);
    EXPECT_EQ(countOps(f, Opcode::ST), 1);
}

TEST(Opt, CseMergesRedundantIndexArithmetic)
{
    Module m = build(
        "(defarray a (9 9))"
        "(defvar out 0.0)"
        "(defvar i 2)"
        "(defvar j 3)"
        "(defun main ()"
        "  (let ((x (aref a i j)) (y (aref a i j)))"
        "    (set out (+ x y))))");
    opt::optimize(m);
    const auto& f = m.funcs[0];
    // The i*9+j arithmetic is computed once...
    EXPECT_EQ(countOps(f, Opcode::IMUL), 1);
    // ...and the two equal plain loads collapse into one.
    // (Loads of i and j themselves: 2 more loads.)
    EXPECT_EQ(countOps(f, Opcode::LD), 3);
}

TEST(Opt, CseDoesNotMergeLoadsAcrossAliasingStore)
{
    Module m = build(
        "(defarray a (4))"
        "(defvar out 0.0)"
        "(defvar k 1)"
        "(defun main ()"
        "  (let ((x (aref a 0)))"
        "    (aset a k 5.0)"          // may alias a[0]
        "    (let ((y (aref a 0)))"
        "      (set out (+ x y)))))");
    opt::optimize(m);
    const auto& f = m.funcs[0];
    int loads_of_a = 0;
    for (const auto& b : f.blocks)
        for (const auto& i : b.instrs)
            if (i.op == Opcode::LD && i.memSym == "a")
                ++loads_of_a;
    EXPECT_EQ(loads_of_a, 2);
}

TEST(Opt, CseMergesLoadsAcrossDistinctArrayStore)
{
    Module m = build(
        "(defarray a (4))"
        "(defarray b (4))"
        "(defvar out 0.0)"
        "(defun main ()"
        "  (let ((x (aref a 0)))"
        "    (aset b 1 5.0)"          // different array: no alias
        "    (let ((y (aref a 0)))"
        "      (set out (+ x y)))))");
    opt::optimize(m);
    const auto& f = m.funcs[0];
    int loads_of_a = 0;
    for (const auto& b : f.blocks)
        for (const auto& i : b.instrs)
            if (i.op == Opcode::LD && i.memSym == "a")
                ++loads_of_a;
    EXPECT_EQ(loads_of_a, 1);
}

TEST(Opt, CseStopsAtSynchronizingReference)
{
    Module m = build(
        "(defarray a (4))"
        "(defarray q (1) :int :empty)"
        "(defvar out 0.0)"
        "(defun main ()"
        "  (let ((x (aref a 0)))"
        "    (put q 0 1)"             // sync reference: full barrier
        "    (let ((y (aref a 0)))"
        "      (set out (+ x y)))))");
    opt::optimize(m);
    const auto& f = m.funcs[0];
    int loads_of_a = 0;
    for (const auto& b : f.blocks)
        for (const auto& i : b.instrs)
            if (i.op == Opcode::LD && i.memSym == "a")
                ++loads_of_a;
    EXPECT_EQ(loads_of_a, 2);
}

TEST(Opt, DceRemovesUnusedComputation)
{
    Module m = build(
        "(defvar out 0)"
        "(defun main ()"
        "  (let ((unused (* 3 4)) (kept 7))"
        "    (set out kept)))");
    opt::optimize(m);
    const auto& f = m.funcs[0];
    EXPECT_EQ(countOps(f, Opcode::IMUL), 0);
    // Store of the constant 7 remains.
    EXPECT_EQ(countOps(f, Opcode::ST), 1);
}

TEST(Opt, DceKeepsSynchronizingLoads)
{
    Module m = build(
        "(defarray q (1) :int :empty)"
        "(defun main ()"
        "  (take q 0) 0)");  // result unused but has a side effect
    opt::optimize(m);
    EXPECT_EQ(countOps(m.funcs[0], Opcode::LD), 1);
}

TEST(Opt, DceRemovesUnusedPlainLoads)
{
    Module m = build(
        "(defarray a (1))"
        "(defun main () (aref a 0) 0)");
    opt::optimize(m);
    EXPECT_EQ(countOps(m.funcs[0], Opcode::LD), 0);
}

TEST(Opt, LoopCodeSurvivesOptimization)
{
    Module m = build(
        "(defvar out 0)"
        "(defun main ()"
        "  (let ((s 0))"
        "    (for (i 0 10) (set s (+ s i)))"
        "    (set out s)))");
    opt::optimize(m);
    const auto& f = m.funcs[0];
    // The loop-carried adds cannot be folded.
    EXPECT_GE(countOps(f, Opcode::IADD), 2);  // s+i and i+1
    EXPECT_EQ(countOps(f, Opcode::BF), 1);
}

TEST(Opt, LivenessFlagsLoopVariablesAsCrossBlock)
{
    Module m = build(
        "(defvar out 0)"
        "(defun main ()"
        "  (let ((s 0))"
        "    (for (i 0 10) (set s (+ s i)))"
        "    (set out s)))");
    opt::optimize(m);
    const auto& f = m.funcs[0];
    const auto live = opt::computeLiveness(f);
    const auto cross = opt::crossBlockRegs(f, live);
    int cross_count = 0;
    for (bool c : cross)
        if (c)
            ++cross_count;
    // At least s, i, and the loop bound cross block boundaries.
    EXPECT_GE(cross_count, 2);
}

TEST(Opt, LivenessPureStraightLine)
{
    Module m = build(
        "(defvar out 0)"
        "(defun main () (let ((a 1)) (set out a)))");
    const auto& f = m.funcs[0];
    const auto live = opt::computeLiveness(f);
    const auto cross = opt::crossBlockRegs(f, live);
    for (std::size_t r = 0; r < cross.size(); ++r)
        EXPECT_FALSE(cross[r]) << "vreg " << r;
}

TEST(Opt, OptimizeIsIdempotent)
{
    Module m = build(
        "(defarray a (8))"
        "(defvar out 0.0)"
        "(defun main ()"
        "  (let ((s 0.0))"
        "    (for (i 0 8) (set s (+ s (aref a i))))"
        "    (set out s)))");
    opt::optimize(m);
    const std::string once = m.toString();
    opt::optimize(m);
    EXPECT_EQ(m.toString(), once);
}

} // namespace
} // namespace procoup
