/** @file Persistent compile cache: cross-instance reuse with zero
 *  recompiles, silent recovery from truncated and bit-flipped
 *  entries (identical RunStats, corruption counted), atomic
 *  publication, and the --no-disk-cache / disabled escape hatches. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/exp/cache.hh"
#include "procoup/exp/plan.hh"
#include "procoup/exp/runner.hh"
#include "procoup/exp/serialize.hh"

namespace procoup {
namespace {

std::string
tempDir()
{
    char tmpl[] = "/tmp/procoup_diskcache_XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    return d;
}

struct Workload
{
    std::string source;
    config::MachineConfig machine = config::baseline();
    sched::CompileOptions opts;

    Workload()
    {
        const auto& b = benchmarks::byName("Matrix");
        source = b.forMode(core::SimMode::Coupled);
        opts = core::optionsFor(core::SimMode::Coupled);
    }

    std::string entryPath(const std::string& dir) const
    {
        return exp::CompileCache::entryPath(
            dir, exp::CompileCache::key(source, machine, opts));
    }
};

/** Run the workload through a fresh cache bound to @p dir. */
sim::RunStats
runThrough(const Workload& w, const std::string& dir,
           exp::CompileCache::Stats* stats_out = nullptr)
{
    exp::ExperimentPlan plan("disk-cache-test");
    plan.addBenchmark(w.machine, benchmarks::byName("Matrix"),
                      core::SimMode::Coupled);
    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.diskCacheDir = dir;
    exp::SweepRunner runner(ropts);
    const exp::SweepResult res = runner.run(plan);
    if (stats_out)
        *stats_out = runner.cache().stats();
    return res.outcomes.front().result.stats;
}

TEST(DiskCache, WarmStartCompilesNothingAndMatches)
{
    const std::string dir = tempDir();
    Workload w;

    exp::CompileCache::Stats cold;
    const sim::RunStats a = runThrough(w, dir, &cold);
    EXPECT_GT(cold.compiles, 0u);
    EXPECT_GT(cold.diskStores, 0u);
    EXPECT_EQ(cold.diskHits, 0u);
    std::ifstream entry(w.entryPath(dir));
    EXPECT_TRUE(entry.good()) << w.entryPath(dir);

    // A different process (modeled by a fresh cache) compiles nothing.
    exp::CompileCache::Stats warm;
    const sim::RunStats b = runThrough(w, dir, &warm);
    EXPECT_EQ(warm.compiles, 0u);
    EXPECT_GT(warm.diskHits, 0u);
    EXPECT_EQ(warm.diskCorrupt, 0u);
    EXPECT_TRUE(a == b);
}

TEST(DiskCache, TruncatedEntryIsSilentlyRecompiled)
{
    const std::string dir = tempDir();
    Workload w;
    const sim::RunStats a = runThrough(w, dir);

    const std::string path = w.entryPath(dir);
    std::string bytes;
    ASSERT_TRUE(exp::readWholeFile(path, &bytes));
    ASSERT_TRUE(
        exp::atomicWriteFile(path, bytes.substr(0, bytes.size() / 2)));

    exp::CompileCache::Stats st;
    const sim::RunStats b = runThrough(w, dir, &st);
    EXPECT_EQ(st.diskCorrupt, 1u);
    EXPECT_EQ(st.diskHits, 0u);
    EXPECT_GT(st.compiles, 0u);   // recompiled...
    EXPECT_GT(st.diskStores, 0u); // ...and re-published
    EXPECT_TRUE(a == b);          // with identical results

    // The re-published entry serves the next run again.
    exp::CompileCache::Stats healed;
    runThrough(w, dir, &healed);
    EXPECT_EQ(healed.compiles, 0u);
    EXPECT_GT(healed.diskHits, 0u);
}

TEST(DiskCache, BitFlippedEntryIsSilentlyRecompiled)
{
    const std::string dir = tempDir();
    Workload w;
    const sim::RunStats a = runThrough(w, dir);

    const std::string path = w.entryPath(dir);
    std::string bytes;
    ASSERT_TRUE(exp::readWholeFile(path, &bytes));
    // Flip a payload bit (past the header) so the length still parses
    // but the checksum does not.
    bytes[exp::kFrameHeaderSize + bytes.size() / 2] ^= 0x01;
    ASSERT_TRUE(exp::atomicWriteFile(path, bytes));

    exp::CompileCache::Stats st;
    const sim::RunStats b = runThrough(w, dir, &st);
    EXPECT_EQ(st.diskCorrupt, 1u);
    EXPECT_GT(st.compiles, 0u);
    EXPECT_TRUE(a == b);
}

TEST(DiskCache, KeyCollisionIsDetectedByEmbeddedKey)
{
    const std::string dir = tempDir();
    Workload w;
    runThrough(w, dir);

    // A foreign entry under our file name (hash collision model):
    // valid frame, wrong embedded key string.
    exp::ByteWriter fw;
    fw.str("some other compilation key");
    ASSERT_TRUE(exp::atomicWriteFile(w.entryPath(dir),
                                     exp::frame(fw.take())));

    exp::CompileCache::Stats st;
    runThrough(w, dir, &st);
    EXPECT_EQ(st.diskCorrupt, 1u);
    EXPECT_GT(st.compiles, 0u);
}

TEST(DiskCache, DisabledCacheBypassesDiskEntirely)
{
    const std::string dir = tempDir();
    Workload w;

    exp::CompileCache cache;
    cache.setEnabled(false);
    cache.setDiskDir(dir);
    cache.compile(w.source, w.machine, w.opts);
    const auto st = cache.stats();
    EXPECT_EQ(st.diskStores, 0u);
    EXPECT_EQ(st.diskHits, 0u);
    std::ifstream entry(w.entryPath(dir));
    EXPECT_FALSE(entry.good());
}

TEST(DiskCache, RunnerWithoutDiskDirWritesNothing)
{
    const std::string dir = tempDir();
    Workload w;
    // diskCacheDir stays empty (the --no-disk-cache path): no entry
    // may appear even though the directory exists.
    exp::ExperimentPlan plan("no-disk");
    plan.addBenchmark(w.machine, benchmarks::byName("Matrix"),
                      core::SimMode::Coupled);
    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    exp::SweepRunner runner(ropts);
    runner.run(plan);
    EXPECT_EQ(runner.cache().stats().diskStores, 0u);
    std::ifstream entry(w.entryPath(dir));
    EXPECT_FALSE(entry.good());
}

} // namespace
} // namespace procoup
