/**
 * @file
 * Tier-1 differential soak: 500 generated programs, every invariant.
 *
 * Runs the fuzz farm's full battery (gen/soak.hh) over a fixed seed
 * range — each generated program on {base, bus} x {SEQ, STS, TPE,
 * Coupled}, clean and under a seeded fault plan — and additionally
 * replays EVERY sweep point on the slow reference simulator
 * (slow_reference_sim.hh), requiring bit-identical RunStats and an
 * identical memory image from both simulators, faulted runs included.
 * The seed range is fixed, so this is deterministic: a failure here
 * is a real divergence, and the report carries a reducer-minimized
 * witness ready for tests/corpus/.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <exception>
#include <string>

#include "procoup/gen/generator.hh"
#include "procoup/gen/soak.hh"
#include "slow_reference_sim.hh"

using namespace procoup;

namespace {

/** Replay cap: generated programs finish in a few thousand cycles;
 *  anything near this bound means the slow sim diverged into a spin. */
constexpr std::uint64_t kReplayCycleCap = 250000;

gen::CrossCheck
slowSimOracle()
{
    return [](const exp::SweepPoint& pt,
              const core::RunResult& r) -> std::string {
        simtest::SlowReferenceSimulator slow(
            pt.machine, r.compiled.program, pt.simOptions);
        try {
            while (slow.step())
                if (slow.cycle() > kReplayCycleCap)
                    return "slow reference sim ran past cycle cap";
        } catch (const std::exception& e) {
            return std::string("slow reference sim threw: ") +
                   e.what();
        }
        if (!(slow.stats() == r.stats))
            return "RunStats diverge between fast and slow sim";
        for (std::uint32_t a = 0; a < slow.memory().size(); ++a)
            if (!(slow.memory().peek(a) == r.memory[a]))
                return "memory image diverges between fast and slow "
                       "sim";
        return "";
    };
}

} // namespace

TEST(FuzzSoak, FiveHundredSeedsAllModesAllOracles)
{
    gen::SoakOptions opts;
    opts.firstSeed = 1;
    opts.programs = 500;

    const gen::SoakReport rep = gen::runSoak(opts, slowSimOracle());

    EXPECT_EQ(rep.programs, 500);
    EXPECT_EQ(rep.points, 500 * (2 * 4 + 4));  // machines*modes + faulted
    for (const auto& m : rep.mismatches)
        ADD_FAILURE() << m.kind << " at " << m.label << " (seed "
                      << m.seed << "): " << m.detail
                      << "\nreduced witness:\n"
                      << m.reduced;
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(FuzzSoak, GeneratorIsDeterministic)
{
    for (std::uint64_t seed : {1ull, 7ull, 123ull, 4096ull}) {
        const gen::GeneratedProgram a = gen::generate(seed);
        const gen::GeneratedProgram b = gen::generate(seed);
        EXPECT_EQ(a.source, b.source) << "seed " << seed;
        EXPECT_EQ(a.checkedSymbols, b.checkedSymbols);
    }
}

TEST(FuzzSoak, CheckProgramAcceptsGeneratedPrograms)
{
    gen::SoakOptions opts;
    for (std::uint64_t seed = 900; seed < 910; ++seed) {
        const gen::GeneratedProgram g = gen::generate(seed);
        EXPECT_EQ(gen::checkProgram(g.source, opts), "")
            << "seed " << seed << "\n"
            << g.source;
    }
}
