/** @file End-to-end simulator tests on hand-assembled programs:
 *  issue discipline, slip, arbitration priority, forking, thread
 *  synchronization through memory, and deadlock detection. */

#include <gtest/gtest.h>

#include "procoup/support/error.hh"
#include "procoup/config/presets.hh"
#include "procoup/isa/builder.hh"
#include "procoup/sim/simulator.hh"
#include "test_util.hh"

namespace procoup {
namespace {

using namespace isa;
using sim::Simulator;
using testutil::fuBR0;
using testutil::fuFPU;
using testutil::fuIU;
using testutil::fuMU;
using testutil::rr;

TEST(SimCore, AluChainComputesAndStores)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    const auto a = pb.data("a", 1);

    auto t = pb.thread("main", {4});
    t.rowOp(fuIU(0), op::alu(Opcode::IADD, rr(0, 0), op::imm(1),
                             op::imm(2)));
    t.rowOp(fuIU(0), op::alu(Opcode::IMUL, rr(0, 1), op::reg(rr(0, 0)),
                             op::imm(10)));
    t.rowOp(fuMU(0), op::st(op::imm(a), op::imm(0), op::reg(rr(0, 1))));
    t.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(0));
    const auto stats = sim.run();
    EXPECT_EQ(sim.memory().peek(a).asInt(), 30);
    EXPECT_EQ(stats.totalOps, 4u);
    EXPECT_EQ(stats.opsByUnit[static_cast<int>(UnitType::Integer)], 2u);
    EXPECT_EQ(stats.opsByUnit[static_cast<int>(UnitType::Memory)], 1u);
    EXPECT_EQ(stats.opsByUnit[static_cast<int>(UnitType::Branch)], 1u);
    // Dependent single-cluster chain: one row per cycle plus drain.
    EXPECT_GE(stats.cycles, 4u);
    EXPECT_LE(stats.cycles, 6u);
}

TEST(SimCore, DependentChainIssuesOnePerCycle)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {2});
    const int n = 20;
    t.rowOp(fuIU(0), op::mov(rr(0, 0), op::imm(0)));
    for (int i = 0; i < n; ++i)
        t.rowOp(fuIU(0), op::alu(Opcode::IADD, rr(0, 0),
                                 op::reg(rr(0, 0)), op::imm(1)));
    t.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(0));
    const auto stats = sim.run();
    // Each dependent op issues the cycle after its producer wrote back.
    EXPECT_GE(stats.cycles, static_cast<std::uint64_t>(n + 1));
    EXPECT_LE(stats.cycles, static_cast<std::uint64_t>(n + 4));
}

TEST(SimCore, IntraInstructionSlip)
{
    // Row 1 holds an independent IU op and an FPU op that depends on a
    // slow load; the IU op must not wait for the FPU op (slip), but
    // row 2 waits for the whole of row 1.
    auto m = config::baseline();
    m.memory.hitLatency = 4;
    ProgramBuilder pb(m.clusters.size());
    const auto a = pb.data("a", 2);
    pb.init(a, Value::makeFloat(1.5));

    auto t = pb.thread("main", {4});
    t.rowOp(fuMU(0), op::ld(rr(0, 0), op::imm(a), op::imm(0)));
    t.row();
    t.add(fuIU(0), op::alu(Opcode::IADD, rr(0, 1), op::imm(2),
                           op::imm(3)));
    t.add(fuFPU(0), op::alu(Opcode::FMUL, rr(0, 2), op::reg(rr(0, 0)),
                            op::fimm(2.0)));
    t.rowOp(fuMU(0), op::st(op::imm(a), op::imm(1), op::reg(rr(0, 2))));
    t.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(0));
    const auto stats = sim.run();
    EXPECT_DOUBLE_EQ(sim.memory().peek(a + 1).asFloat(), 3.0);
    // The load takes 4 cycles; the FPU op issues at ~5, the store at
    // ~6. Without slip the IU op would also be delayed; slip is
    // observable as the IU op issuing in cycle 1 (checked indirectly:
    // the whole run is bounded by the load latency path, not 2x it).
    EXPECT_GE(stats.cycles, 7u);
    EXPECT_LE(stats.cycles, 10u);
}

TEST(SimCore, BranchLoopAccumulates)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    const auto out = pb.data("out", 1);

    // sum = 0; i = 0; while (i < 10) { sum += i; i += 1 }
    auto t = pb.thread("main", {4, 0, 0, 0, 2});
    t.row();
    t.add(fuIU(0), op::mov(rr(0, 0), op::imm(0)));   // sum
    t.rowOp(fuIU(0), op::mov(rr(0, 1), op::imm(0))); // i
    const auto loop = t.nextRow();
    // cond = i < 10, broadcast to the branch cluster (4).
    t.rowOp(fuIU(0), op::alu2(Opcode::ILT, rr(0, 2), rr(4, 0),
                              op::reg(rr(0, 1)), op::imm(10)));
    const auto body = t.nextRow();
    t.rowOp(fuBR0(), op::bf(op::reg(rr(4, 0)), body + 4));
    t.rowOp(fuIU(0), op::alu(Opcode::IADD, rr(0, 0), op::reg(rr(0, 0)),
                             op::reg(rr(0, 1))));
    t.rowOp(fuIU(0), op::alu(Opcode::IADD, rr(0, 1), op::reg(rr(0, 1)),
                             op::imm(1)));
    t.rowOp(fuBR0(), op::br(loop));
    t.rowOp(fuMU(0), op::st(op::imm(out), op::imm(0),
                            op::reg(rr(0, 0))));
    t.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(0));
    sim.run();
    EXPECT_EQ(sim.memory().peek(out).asInt(), 45);
}

TEST(SimCore, ForkPassesArgumentsAndRunsConcurrently)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    const auto out = pb.data("out", 2);

    // child(x): out[x] = x * 7
    auto child = pb.thread("child", {4});
    child.params({rr(0, 0)});
    child.rowOp(fuIU(0), op::alu(Opcode::IMUL, rr(0, 1),
                                 op::reg(rr(0, 0)), op::imm(7)));
    child.rowOp(fuMU(0), op::st(op::imm(out), op::reg(rr(0, 0)),
                                op::reg(rr(0, 1))));
    child.rowOp(fuBR0(), op::ethr());

    auto main = pb.thread("main", {2});
    main.rowOp(fuBR0(), op::fork(0, {op::imm(0)}));
    main.rowOp(fuBR0(), op::fork(0, {op::imm(1)}));
    main.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(1));
    const auto stats = sim.run();
    EXPECT_EQ(sim.memory().peek(out + 0).asInt(), 0);
    EXPECT_EQ(sim.memory().peek(out + 1).asInt(), 7);
    EXPECT_EQ(stats.threadsSpawned, 3u);
    EXPECT_GE(stats.peakActiveThreads, 2);
}

TEST(SimCore, SyncThroughMemoryPresenceBits)
{
    // Parent forks a producer, then blocks on a wait-full load of an
    // initially-empty flag cell; the producer fills it.
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    const auto flag = pb.data("flag", 1);
    pb.init(flag, Value::makeInt(0), /*full=*/false);

    auto producer = pb.thread("producer", {0, 4});
    // Busy work, then store the flag.
    producer.rowOp(fuIU(1), op::mov(rr(1, 0), op::imm(0)));
    for (int i = 0; i < 10; ++i)
        producer.rowOp(fuIU(1), op::alu(Opcode::IADD, rr(1, 0),
                                        op::reg(rr(1, 0)), op::imm(3)));
    producer.rowOp(fuMU(1), op::st(op::imm(flag), op::imm(0),
                                   op::reg(rr(1, 0))));
    producer.rowOp(fuBR0(), op::ethr());

    auto main = pb.thread("main", {4});
    main.rowOp(fuBR0(), op::fork(0, {}));
    main.rowOp(fuMU(0), op::ld(rr(0, 0), op::imm(flag), op::imm(0),
                               MemFlavor::waitLoad()));
    main.rowOp(fuIU(0), op::alu(Opcode::IADD, rr(0, 1),
                                op::reg(rr(0, 0)), op::imm(1)));
    main.rowOp(fuMU(0), op::st(op::imm(flag), op::imm(0),
                               op::reg(rr(0, 1))));
    main.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(1));
    const auto stats = sim.run();
    EXPECT_EQ(sim.memory().peek(flag).asInt(), 31);
    EXPECT_GE(stats.memParked, 1u);
    // The waiting load parked for roughly the producer's runtime.
    EXPECT_GE(stats.memParkedCycles, 5u);
}

TEST(SimCore, StrictPriorityFavorsEarlierThread)
{
    // Two identical children compete for cluster 2's integer unit.
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());

    auto child = pb.thread("child", {2, 0, 2});
    child.params({rr(0, 0)});
    child.rowOp(fuIU(2), op::mov(rr(2, 0), op::imm(0)));
    for (int i = 0; i < 30; ++i)
        child.rowOp(fuIU(2), op::alu(Opcode::IADD, rr(2, 0),
                                     op::reg(rr(2, 0)), op::imm(1)));
    child.rowOp(fuBR0(), op::ethr());

    auto main = pb.thread("main", {2});
    main.rowOp(fuBR0(), op::fork(0, {op::imm(1)}));
    main.rowOp(fuBR0(), op::fork(0, {op::imm(2)}));
    main.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(1));
    const auto stats = sim.run();
    // Thread ids: 0 = main, 1 = first child, 2 = second child.
    ASSERT_EQ(stats.threads.size(), 3u);
    EXPECT_LT(stats.threads[1].endCycle, stats.threads[2].endCycle);
}

TEST(SimCore, TwoClustersRunTrulyConcurrently)
{
    // One thread per cluster: the pair should take about as long as
    // one alone (inter-thread parallelism), not twice as long.
    const auto m = config::baseline();

    auto make = [&](bool both) {
        ProgramBuilder pb(m.clusters.size());
        auto c0 = pb.thread("c0", {2});
        c0.rowOp(fuIU(0), op::mov(rr(0, 0), op::imm(0)));
        for (int i = 0; i < 40; ++i)
            c0.rowOp(fuIU(0), op::alu(Opcode::IADD, rr(0, 0),
                                      op::reg(rr(0, 0)), op::imm(1)));
        c0.rowOp(fuBR0(), op::ethr());

        auto c1 = pb.thread("c1", {0, 2});
        c1.rowOp(fuIU(1), op::mov(rr(1, 0), op::imm(0)));
        for (int i = 0; i < 40; ++i)
            c1.rowOp(fuIU(1), op::alu(Opcode::IADD, rr(1, 0),
                                      op::reg(rr(1, 0)), op::imm(1)));
        c1.rowOp(fuBR0(), op::ethr());

        auto main = pb.thread("main", {1});
        main.rowOp(fuBR0(), op::fork(0, {}));
        if (both)
            main.rowOp(fuBR0(), op::fork(1, {}));
        main.rowOp(fuBR0(), op::ethr());
        return pb.finish(2);
    };

    Simulator one(m, make(false));
    Simulator two(m, make(true));
    const auto s1 = one.run();
    const auto s2 = two.run();
    EXPECT_LE(s2.cycles, s1.cycles + 5);
}

TEST(SimCore, RemoteWritesCrossClusters)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    const auto out = pb.data("out", 1);

    auto t = pb.thread("main", {2, 2});
    // Compute on cluster 0, deposit into cluster 1, consume there.
    t.rowOp(fuIU(0), op::alu(Opcode::IADD, rr(1, 0), op::imm(20),
                             op::imm(2)));
    t.rowOp(fuIU(1), op::alu(Opcode::IMUL, rr(1, 1), op::reg(rr(1, 0)),
                             op::imm(2)));
    t.rowOp(fuMU(1), op::st(op::imm(out), op::imm(0),
                            op::reg(rr(1, 1))));
    t.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(0));
    const auto stats = sim.run();
    EXPECT_EQ(sim.memory().peek(out).asInt(), 44);
    EXPECT_GE(stats.remoteWrites, 1u);
}

TEST(SimCore, MultiDestinationBroadcast)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    const auto out = pb.data("out", 2);

    auto t = pb.thread("main", {2, 2});
    t.rowOp(fuIU(0), op::alu2(Opcode::IADD, rr(0, 0), rr(1, 0),
                              op::imm(5), op::imm(6)));
    t.row();
    t.add(fuMU(0), op::st(op::imm(out), op::imm(0), op::reg(rr(0, 0))));
    t.add(fuMU(1), op::st(op::imm(out), op::imm(1), op::reg(rr(1, 0))));
    t.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(0));
    sim.run();
    EXPECT_EQ(sim.memory().peek(out + 0).asInt(), 11);
    EXPECT_EQ(sim.memory().peek(out + 1).asInt(), 11);
}

TEST(SimCore, SameRowWarReadsOldValue)
{
    // Within one instruction, a reader of r0 and a writer of r0 are
    // simultaneous: the reader must see the pre-row value.
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    const auto out = pb.data("out", 2);

    auto t = pb.thread("main", {4});
    t.rowOp(fuIU(0), op::mov(rr(0, 0), op::imm(5)));
    t.row();
    t.add(fuIU(0), op::mov(rr(0, 1), op::reg(rr(0, 0))));      // reads 5
    t.add(fuFPU(0), op::alu(Opcode::FMOV, rr(0, 0),
                            op::fimm(9.0)));                   // writes
    t.row();
    t.add(fuMU(0), op::st(op::imm(out), op::imm(0), op::reg(rr(0, 1))));
    t.rowOp(fuMU(0), op::st(op::imm(out), op::imm(1), op::reg(rr(0, 0))));
    t.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(0));
    sim.run();
    EXPECT_EQ(sim.memory().peek(out + 0).asInt(), 5);
    EXPECT_DOUBLE_EQ(sim.memory().peek(out + 1).asFloat(), 9.0);
}

TEST(SimCore, DeadlockIsDetectedAndReported)
{
    auto m = config::baseline();
    m.deadlockCycleLimit = 200;
    ProgramBuilder pb(m.clusters.size());
    const auto flag = pb.data("flag", 1);
    pb.init(flag, Value::makeInt(0), /*full=*/false);

    auto t = pb.thread("main", {2});
    t.rowOp(fuMU(0), op::ld(rr(0, 0), op::imm(flag), op::imm(0),
                            MemFlavor::waitLoad()));
    t.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(0));
    EXPECT_THROW(sim.run(), SimError);
}

TEST(SimCore, SharedBusSlowerThanFullOnRemoteTraffic)
{
    auto make = [](const config::MachineConfig& m) {
        ProgramBuilder pb(m.clusters.size());
        auto t = pb.thread("main", {2, 2, 2, 2});
        // Four simultaneous remote writes, repeated.
        for (int rep = 0; rep < 8; ++rep) {
            t.row();
            t.add(fuIU(0), op::alu(Opcode::IADD, rr(1, rep % 2),
                                   op::imm(rep), op::imm(1)));
            t.add(fuIU(1), op::alu(Opcode::IADD, rr(2, rep % 2),
                                   op::imm(rep), op::imm(2)));
            t.add(fuIU(2), op::alu(Opcode::IADD, rr(3, rep % 2),
                                   op::imm(rep), op::imm(3)));
            t.add(fuIU(3), op::alu(Opcode::IADD, rr(0, rep % 2),
                                   op::imm(rep), op::imm(4)));
        }
        t.rowOp(fuBR0(), op::ethr());
        return pb.finish(0);
    };

    const auto full = config::baseline();
    const auto bus = config::withInterconnect(
        config::baseline(), config::InterconnectScheme::SharedBus);

    Simulator sf(full, make(full));
    Simulator sb(bus, make(bus));
    const auto cf = sf.run().cycles;
    const auto cb = sb.run().cycles;
    EXPECT_GT(cb, cf);
}

TEST(SimCore, MarksAreRecordedWithCycles)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {2});
    t.rowOp(fuIU(0), op::mark(7));
    t.rowOp(fuIU(0), op::mov(rr(0, 0), op::imm(1)));
    t.rowOp(fuIU(0), op::mark(7));
    t.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(0));
    const auto stats = sim.run();
    const auto cycles = stats.markCycles(0, 7);
    ASSERT_EQ(cycles.size(), 2u);
    EXPECT_LT(cycles[0], cycles[1]);
    EXPECT_TRUE(stats.markCycles(0, 99).empty());
}

TEST(SimCore, MaxActiveThreadsQueuesSpawns)
{
    auto m = config::baseline();
    m.maxActiveThreads = 2;  // main + one child at a time
    ProgramBuilder pb(m.clusters.size());
    const auto out = pb.data("out", 4);

    auto child = pb.thread("child", {2});
    child.params({rr(0, 0)});
    child.rowOp(fuMU(0), op::st(op::imm(out), op::reg(rr(0, 0)),
                                op::imm(1)));
    child.rowOp(fuBR0(), op::ethr());

    auto main = pb.thread("main", {1});
    for (int i = 0; i < 4; ++i)
        main.rowOp(fuBR0(), op::fork(0, {op::imm(i)}));
    main.rowOp(fuBR0(), op::ethr());

    Simulator sim(m, pb.finish(1));
    const auto stats = sim.run();
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(sim.memory().peek(out + i).asInt(), 1) << i;
    EXPECT_LE(stats.peakActiveThreads, 2);
    EXPECT_EQ(stats.threadsSpawned, 5u);
}

TEST(SimCore, RunsAreDeterministic)
{
    auto m = config::withMem2(config::baseline());
    auto make = [&] {
        ProgramBuilder pb(m.clusters.size());
        const auto a = pb.data("a", 16);
        auto t = pb.thread("main", {4});
        t.rowOp(fuIU(0), op::mov(rr(0, 0), op::imm(0)));
        for (int i = 0; i < 16; ++i) {
            t.rowOp(fuMU(0), op::ld(rr(0, 1), op::imm(a), op::imm(i)));
            t.rowOp(fuIU(0), op::alu(Opcode::IADD, rr(0, 0),
                                     op::reg(rr(0, 0)),
                                     op::reg(rr(0, 1))));
        }
        t.rowOp(fuBR0(), op::ethr());
        return pb.finish(0);
    };

    Simulator s1(m, make());
    Simulator s2(m, make());
    EXPECT_EQ(s1.run().cycles, s2.run().cycles);
}

TEST(SimCore, StatsSummaryMentionsKeyFigures)
{
    const auto m = config::baseline();
    ProgramBuilder pb(m.clusters.size());
    auto t = pb.thread("main", {2});
    t.rowOp(fuIU(0), op::mov(rr(0, 0), op::imm(1)));
    t.rowOp(fuBR0(), op::ethr());
    Simulator sim(m, pb.finish(0));
    const auto stats = sim.run();
    const auto s = stats.summary();
    EXPECT_NE(s.find("cycles"), std::string::npos);
    EXPECT_NE(s.find("FPU"), std::string::npos);
}

} // namespace
} // namespace procoup
