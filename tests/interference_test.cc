/** @file Regression net for the Table 3 interference phenomena. */

#include <gtest/gtest.h>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"
#include "procoup/sched/report.hh"

namespace procoup {
namespace {

using benchmarks::InterferenceSources;

double
avgIter(const sim::RunStats& stats, int thread)
{
    const auto marks =
        stats.markCycles(thread, InterferenceSources::markIterate);
    if (marks.size() < 2)
        return 0.0;
    return static_cast<double>(marks.back() - marks.front()) /
           static_cast<double>(marks.size() - 1);
}

TEST(Interference, StsRunsAtItsStaticScheduleRate)
{
    // "In STS mode, there is only one thread, and it runs in the same
    // number of cycles as the static schedule predicts."
    const auto sources = benchmarks::modelQueue();
    core::CoupledNode node(config::baseline());
    const auto run = node.runSource(sources.sts, core::SimMode::Sts);

    const double iter = avgIter(run.stats, 0);
    EXPECT_GT(iter, 0.0);
    // Without contention the iteration rate is constant: every gap
    // between consecutive marks is identical.
    const auto marks = run.stats.markCycles(
        0, InterferenceSources::markIterate);
    ASSERT_GE(marks.size(), 3u);
    const auto gap = marks[1] - marks[0];
    for (std::size_t i = 2; i < marks.size(); ++i)
        EXPECT_EQ(marks[i] - marks[i - 1], gap) << i;
}

TEST(Interference, AllDevicesEvaluatedExactlyOnce)
{
    const auto sources = benchmarks::modelQueue();
    core::CoupledNode node(config::baseline());
    const auto run =
        node.runSource(sources.coupled, core::SimMode::Coupled);

    int total = 0;
    for (int w = 1; w <= InterferenceSources::numWorkers; ++w)
        total += static_cast<int>(
            run.stats.markCycles(w, InterferenceSources::markIterate)
                .size());
    EXPECT_EQ(total, InterferenceSources::numDevices);

    // Every worker made progress and every slot was written.
    for (int w = 1; w <= InterferenceSources::numWorkers; ++w)
        EXPECT_GE(run.stats
                      .markCycles(w, InterferenceSources::markIterate)
                      .size(),
                  1u);
    for (int d = 0; d < InterferenceSources::numDevices; ++d)
        EXPECT_NE(run.value("qout", d), 0.0) << d;
}

TEST(Interference, ContentionDilatesIterations)
{
    // Four contending workers run each iteration slower than one
    // worker alone (the paper's dilation beyond the compile-time
    // schedule), and the highest-priority worker suffers least.
    const auto sources = benchmarks::modelQueue();
    core::CoupledNode node(config::baseline());
    const auto solo =
        node.runSource(sources.single_worker, core::SimMode::Coupled);
    const auto coupled =
        node.runSource(sources.coupled, core::SimMode::Coupled);

    const double schedule = avgIter(solo.stats, 1);
    ASSERT_GT(schedule, 0.0);

    double worst = 0.0;
    for (int w = 1; w <= InterferenceSources::numWorkers; ++w) {
        const double it = avgIter(coupled.stats, w);
        if (it > 0.0) {
            EXPECT_GE(it, schedule - 1.0) << "worker " << w;
            worst = std::max(worst, it);
        }
    }
    EXPECT_GT(worst, schedule);

    const double first = avgIter(coupled.stats, 1);
    EXPECT_LE(first, worst);
}

TEST(Interference, AggregateCoupledBeatsSts)
{
    // "the multiple threads of Coupled allows evaluations to overlap
    // such that the aggregate running time is shorter".
    const auto sources = benchmarks::modelQueue();
    core::CoupledNode node(config::baseline());
    const auto sts = node.runSource(sources.sts, core::SimMode::Sts);
    const auto coupled =
        node.runSource(sources.coupled, core::SimMode::Coupled);
    EXPECT_LT(coupled.stats.cycles, sts.stats.cycles);
}

TEST(Interference, WorkerScheduleReportIsWellFormed)
{
    // The schedule report exists for every worker clone and mentions
    // the take of the queue head.
    core::CoupledNode node(config::baseline());
    const auto compiled = node.compile(
        benchmarks::modelQueue().coupled, core::SimMode::Coupled);
    const auto machine = config::baseline();
    int workers = 0;
    for (const auto& t : compiled.program.threads) {
        if (t.name.rfind("worker", 0) != 0)
            continue;
        ++workers;
        const std::string report =
            sched::formatSchedule(t, machine);
        EXPECT_NE(report.find("ld"), std::string::npos);
        EXPECT_NE(report.find("ethr"), std::string::npos);
        EXPECT_NE(report.find("BR"), std::string::npos);
    }
    EXPECT_EQ(workers, 4);

    const std::string diag = sched::formatDiagnostics(compiled);
    EXPECT_NE(diag.find("main"), std::string::npos);
    EXPECT_NE(diag.find("peak registers"), std::string::npos);
}

} // namespace
} // namespace procoup
