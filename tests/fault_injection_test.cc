/** @file Determinism and differential properties of the seeded
 *  fault-injection layer (src/procoup/fault/): the same plan and seed
 *  must reproduce bit-identical RunStats, different seeds must draw
 *  different perturbation schedules, the sanitizer must be purely
 *  observational, and the optimized simulator must stay bit-identical
 *  to the slow reference simulator under a shared fault plan. */

#include <gtest/gtest.h>

#include "procoup/benchmarks/benchmarks.hh"
#include "procoup/config/presets.hh"
#include "procoup/core/node.hh"
#include "procoup/fault/fault.hh"
#include "procoup/sim/simulator.hh"
#include "procoup/support/error.hh"
#include "slow_reference_sim.hh"

namespace procoup {
namespace {

isa::Program
compiledMatrix(const config::MachineConfig& machine)
{
    core::CoupledNode node(machine);
    return node
        .compile(benchmarks::byName("Matrix").forMode(
                     core::SimMode::Coupled),
                 core::SimMode::Coupled)
        .program;
}

sim::RunStats
runWith(const config::MachineConfig& machine, const isa::Program& prog,
        const sim::SimOptions& opts)
{
    sim::Simulator s(machine, prog, opts);
    s.run();
    return s.stats();
}

TEST(FaultInjection, DisabledPlanIsZeroCost)
{
    const auto machine = config::withMem1(config::baseline());
    const auto prog = compiledMatrix(machine);

    const sim::RunStats clean = runWith(machine, prog, {});
    sim::SimOptions off;
    off.faults = fault::FaultPlan::atIntensity(0.0);
    const sim::RunStats with_plan = runWith(machine, prog, off);

    EXPECT_FALSE(clean.faultsEnabled);
    EXPECT_TRUE(clean == with_plan);
}

TEST(FaultInjection, SameSeedIsBitIdentical)
{
    const auto machine = config::withMem1(config::baseline());
    const auto prog = compiledMatrix(machine);

    sim::SimOptions opts;
    opts.faults = fault::FaultPlan::atIntensity(1.0, 42);
    const sim::RunStats a = runWith(machine, prog, opts);
    const sim::RunStats b = runWith(machine, prog, opts);

    EXPECT_TRUE(a.faultsEnabled);
    EXPECT_GT(a.faults.totalEvents(), 0u);
    EXPECT_TRUE(a == b);
}

TEST(FaultInjection, DifferentSeedsDrawDifferentSchedules)
{
    const auto machine = config::withMem1(config::baseline());
    const auto prog = compiledMatrix(machine);

    sim::SimOptions opts;
    opts.faults = fault::FaultPlan::atIntensity(1.0, 1);
    const sim::RunStats a = runWith(machine, prog, opts);
    opts.faults = opts.faults.reseeded(2);
    const sim::RunStats b = runWith(machine, prog, opts);

    EXPECT_GT(a.faults.totalEvents(), 0u);
    EXPECT_GT(b.faults.totalEvents(), 0u);
    EXPECT_FALSE(a.faults == b.faults);
}

TEST(FaultInjection, FaultsPerturbTimingNotResults)
{
    const auto machine = config::withMem1(config::baseline());
    core::CoupledNode node(machine);
    const auto prog = compiledMatrix(machine);

    sim::SimOptions opts;
    opts.faults = fault::FaultPlan::atIntensity(1.0, 7);
    const core::RunResult faulted = node.run(prog, opts);
    const core::RunResult clean = node.run(prog);

    EXPECT_GT(faulted.stats.cycles, clean.stats.cycles);
    std::string why;
    EXPECT_TRUE(benchmarks::verify("Matrix", faulted, &why)) << why;
}

TEST(FaultInjection, SanitizerIsObservational)
{
    const auto machine = config::withMem1(config::baseline());
    const auto prog = compiledMatrix(machine);

    sim::SimOptions opts;
    opts.faults = fault::FaultPlan::atIntensity(1.0, 42);
    const sim::RunStats plain = runWith(machine, prog, opts);

    opts.sanitizeEveryCycles = 64;
    const sim::RunStats sanitized = runWith(machine, prog, opts);

    EXPECT_TRUE(plain == sanitized);
}

TEST(FaultInjection, SanitizerPassesCleanRunsOnEveryMode)
{
    const auto machine = config::withMem2(config::baseline());
    for (auto mode : core::allSimModes()) {
        const auto& bench = benchmarks::byName("LUD");
        core::CoupledNode node(machine);
        if (mode == core::SimMode::Ideal && !bench.hasIdeal())
            continue;
        const auto prog =
            node.compile(bench.forMode(mode), mode).program;
        sim::SimOptions opts;
        opts.sanitizeEveryCycles = 64;
        EXPECT_NO_THROW(runWith(machine, prog, opts))
            << core::simModeName(mode);
    }
}

TEST(FaultInjection, OptimizedMatchesReferenceUnderFaults)
{
    const auto machine = config::withMem1(config::baseline());
    const auto prog = compiledMatrix(machine);

    sim::SimOptions opts;
    opts.faults = fault::FaultPlan::atIntensity(1.0, 42);

    sim::Simulator fast(machine, prog, opts);
    fast.run();
    simtest::SlowReferenceSimulator ref(machine, prog, opts);
    ref.run();

    const sim::RunStats fs = fast.stats();
    const sim::RunStats rs = ref.stats();
    EXPECT_TRUE(fs == rs)
        << "cycles " << fs.cycles << " vs " << rs.cycles
        << ", fault events " << fs.faults.totalEvents() << " vs "
        << rs.faults.totalEvents();

    ASSERT_EQ(fast.memory().size(), ref.memory().size());
    for (std::uint32_t a = 0; a < fast.memory().size(); ++a)
        ASSERT_TRUE(fast.memory().peek(a) == ref.memory().peek(a))
            << "memory diverged at " << a;
}

TEST(FaultInjection, CycleCapThrowsStructuredError)
{
    const auto machine = config::withMem1(config::baseline());
    const auto prog = compiledMatrix(machine);

    sim::SimOptions opts;
    opts.limits.maxCycles = 40;
    sim::Simulator s(machine, prog, opts);
    try {
        s.run();
        FAIL() << "expected SimError";
    } catch (const SimError& e) {
        EXPECT_EQ(e.kind(), SimErrorKind::CycleLimit);
        EXPECT_EQ(e.cycle(), 40u);
        EXPECT_NE(std::string(e.what()).find("cycle budget"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace procoup
